package core

import (
	"fmt"
	"slices"
	"time"

	"rbcast/internal/seqset"
)

// Host is one protocol participant. It is a single-threaded state
// machine: the driving runtime must serialize all calls to HandleMessage,
// Tick, and Broadcast.
type Host struct {
	id       HostID
	source   HostID
	peers    []HostID // sorted, includes self and source
	order    map[HostID]int
	params   Params
	env      Env
	observer Observer

	// info is INFO_i: the set of sequence numbers received so far.
	info seqset.Set
	// prunedTo is the §6 pruning floor: every sequence number ≤ prunedTo
	// was pruned from info and the store after being confirmed globally
	// held. The floor makes pruning safe on duplicating networks — a
	// late copy of a pruned message must be recognized as a duplicate
	// even though info no longer contains it.
	prunedTo seqset.Seq
	// store holds message payloads for redelivery (the paper's
	// non-volatile storage).
	store map[seqset.Seq][]byte
	// maps is MAP_i: this host's view of every other host's INFO set.
	// Missing entries mean "empty set". Entries include optimistic marks
	// for messages this host sent but that may have been lost (the next
	// Info from the peer restores the truth); pruning must not rely on
	// them, so confirmed knowledge is tracked separately.
	maps map[HostID]seqset.Set
	// confirmed mirrors maps but is updated only on evidence received
	// from the peer itself (Info, attach requests, data), never on sends.
	// §6 pruning uses it.
	confirmed map[HostID]seqset.Set
	// parentOf is p_i[]: the supposed parent of every host, learned from
	// the routine parent-pointer exchange. parentOf[id] mirrors parent.
	parentOf map[HostID]HostID
	// cluster is CLUSTER_i, inferred from cost bits; always contains id.
	cluster map[HostID]bool
	// children is CHILDREN_i.
	children map[HostID]bool
	// parent is p_i[i]; Nil when the host has no parent.
	parent HostID

	// Delta INFO state, active only under Params.DeltaInfo. Sender side:
	// lastSentInfo holds the full INFO set most recently advertised to
	// each peer (by full MsgInfo or by delta chain), and sinceFull counts
	// consecutive deltas since the last full — a resync counter. Receiver
	// side: infoView reconstructs each peer's full INFO from the last
	// full set received plus every delta applied since; infoSynced marks
	// views rooted at a received full set (only those may be promoted to
	// authoritative on a checksum match).
	lastSentInfo map[HostID]seqset.Set
	sinceFull    map[HostID]int
	infoView     map[HostID]seqset.Set
	infoSynced   map[HostID]bool

	// echo tracks per-sequence echo/ready voting under Params.EchoReady
	// (nil otherwise); equivocations counts conflicting-vote
	// observations. See echo.go.
	echo          map[seqset.Seq]*echoState
	equivocations uint64

	// catchup is the client side of the catch-up sync layer (sync.go);
	// nil unless Params.SyncBatch > 0. snapData/snapMark are the server
	// side: the latest checkpoint bytes and their watermark (zero until
	// the first snapshot). The uint64s are the layer's counters.
	catchup       *syncState
	snapData      []byte
	snapMark      seqset.Seq
	syncRounds    uint64
	syncFailovers uint64
	snapResumes   uint64
	snapInstalls  uint64

	lastFromParent time.Duration
	started        bool
	nextSeq        seqset.Seq // source only: next sequence number to assign

	attach attachState

	// health is the per-peer liveness tracker (see health.go). Records
	// are kept regardless of Params, but only gate traffic when the
	// backoff fields are set.
	health          map[HostID]*peerHealth
	jitterSeed      int64
	resyncBursts    uint64
	suppressedSends uint64

	// outbox buffers sends within one activation when Params.Piggyback is
	// set; activationDepth guards against double-flushing on reentrant
	// entry points.
	outbox          []outboundMsg
	activationDepth int

	// next fire times for periodic activities.
	nextAttach     time.Duration
	nextInfoLocal  time.Duration
	nextInfoRemote time.Duration
	nextInfoGlobal time.Duration
	nextGapLocal   time.Duration
	nextGapRemote  time.Duration
	nextGapGlobal  time.Duration
	nextSync       time.Duration
}

type attachState struct {
	inProgress bool
	candidate  HostID
	deadline   time.Duration
	// excluded holds candidates that timed out or rejected during the
	// current procedure run; cleared at each periodic activation.
	excluded map[HostID]bool
	// exhausted is set when a retry sweep runs out of candidates; while
	// set, further activations are skipped until new evidence (any
	// received message) arrives, so an unreachable host does not burn a
	// full candidate sweep every AttachPeriod.
	exhausted bool
	// barren counts consecutive periodic (fresh) sweeps a detached host
	// finished without any candidate; attach.go's Case I option 4 — the
	// similar-INFO cross-cluster escape — engages only past a threshold,
	// so transient startup states (where every INFO set is empty and
	// thus trivially similar) resolve through the paper's options first.
	barren int
}

// NewHost constructs a host. The returned host is idle until Start.
func NewHost(cfg Config, env Env) (*Host, error) {
	if env == nil {
		return nil, fmt.Errorf("core: nil Env")
	}
	if cfg.Params == (Params{}) {
		cfg.Params = DefaultParams()
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	peers := make([]HostID, len(cfg.Peers))
	copy(peers, cfg.Peers)
	slices.Sort(peers)
	order := make(map[HostID]int, len(peers))
	for _, p := range peers {
		if cfg.Order != nil {
			order[p] = cfg.Order[p]
		} else {
			order[p] = int(p)
		}
	}
	h := &Host{
		id:         cfg.ID,
		source:     cfg.Source,
		peers:      peers,
		order:      order,
		params:     cfg.Params,
		env:        env,
		observer:   cfg.Observer,
		store:      make(map[seqset.Seq][]byte),
		maps:       make(map[HostID]seqset.Set),
		confirmed:  make(map[HostID]seqset.Set),
		parentOf:   make(map[HostID]HostID),
		cluster:    map[HostID]bool{cfg.ID: true},
		children:   make(map[HostID]bool),
		parent:     Nil,
		nextSeq:    1,
		health:     make(map[HostID]*peerHealth),
		jitterSeed: cfg.JitterSeed,
	}
	if cfg.Params.ClusterMode != ClusterNone {
		for _, p := range cfg.InitialCluster {
			h.cluster[p] = true
		}
	}
	if cfg.Params.DeltaInfo {
		h.lastSentInfo = make(map[HostID]seqset.Set)
		h.sinceFull = make(map[HostID]int)
		h.infoView = make(map[HostID]seqset.Set)
		h.infoSynced = make(map[HostID]bool)
	}
	if cfg.Params.EchoReady {
		h.echo = make(map[seqset.Seq]*echoState)
	}
	if cfg.Params.SyncEnabled() {
		h.catchup = &syncState{}
	}
	return h, nil
}

// ID returns the host's identity.
func (h *Host) ID() HostID { return h.id }

// IsSource reports whether this host is the broadcast source.
func (h *Host) IsSource() bool { return h.id == h.source }

// Parent returns the current parent pointer (Nil if none).
func (h *Host) Parent() HostID { return h.parent }

// Children returns the current children set, sorted.
func (h *Host) Children() []HostID {
	out := make([]HostID, 0, len(h.children))
	for c := range h.children {
		out = append(out, c)
	}
	slices.Sort(out)
	return out
}

// Cluster returns CLUSTER_i, sorted (always includes the host itself).
func (h *Host) Cluster() []HostID {
	out := make([]HostID, 0, len(h.cluster))
	for c := range h.cluster {
		out = append(out, c)
	}
	slices.Sort(out)
	return out
}

// Info returns a copy of INFO_i (copy-on-write; mutating either side is
// safe).
func (h *Host) Info() seqset.Set { return h.info.Snapshot() }

// MapOf returns a copy of MAP_i[j] — this host's view of j's INFO set.
func (h *Host) MapOf(j HostID) seqset.Set {
	s, ok := h.maps[j]
	if !ok {
		return seqset.Set{}
	}
	snap := s.Snapshot()
	h.maps[j] = s // write back the copy-on-write mark
	return snap
}

// ParentView returns p_i[j], this host's view of j's parent pointer.
func (h *Host) ParentView(j HostID) HostID {
	if j == h.id {
		return h.parent
	}
	return h.parentOf[j]
}

// IsLeader reports whether this host currently considers itself a cluster
// leader: its parent is NIL or lies in a different cluster (§4.1).
func (h *Host) IsLeader() bool {
	return h.parent == Nil || !h.cluster[h.parent]
}

// Start initializes the periodic schedules. Activities are phase-staggered
// by static order so that in a deterministic simulation hosts do not all
// fire on the same instant.
func (h *Host) Start(now time.Duration) {
	h.started = true
	h.lastFromParent = now
	stagger := func(period time.Duration) time.Duration {
		n := len(h.peers)
		slot := h.order[h.id] % n
		if slot < 0 {
			slot = -slot
		}
		return now + period*time.Duration(slot)/time.Duration(n) + period
	}
	h.nextAttach = stagger(h.params.AttachPeriod)
	h.nextInfoLocal = stagger(h.params.InfoClusterPeriod)
	h.nextInfoRemote = stagger(h.params.InfoRemotePeriod)
	h.nextInfoGlobal = stagger(h.params.InfoGlobalPeriod)
	h.nextGapLocal = stagger(h.params.GapClusterPeriod)
	h.nextGapRemote = stagger(h.params.GapRemotePeriod)
	h.nextGapGlobal = stagger(h.params.GapGlobalPeriod)
	if h.params.SyncEnabled() {
		h.nextSync = stagger(h.params.SyncPeriod)
	}
}

// Broadcast generates the next data message at the source and propagates
// it to the source's children. It returns the assigned sequence number.
// Calling Broadcast on a non-source host is a programming error.
func (h *Host) Broadcast(now time.Duration, payload []byte) seqset.Seq {
	if !h.IsSource() {
		panic(fmt.Sprintf("core: Broadcast called on non-source host %d", h.id))
	}
	h.begin()
	defer h.end()
	seq := h.nextSeq
	h.nextSeq++
	h.info.Add(seq)
	h.store[seq] = append([]byte(nil), payload...)
	h.env.Deliver(seq, h.store[seq])
	h.event(now, EvAccepted, h.id, seq)
	m := Message{Kind: MsgData, Seq: seq, Payload: h.store[seq]}
	for _, c := range h.Children() {
		h.sendMarking(c, m)
	}
	if h.params.EchoReady {
		// The source's own votes: it delivered the real payload, so both
		// its echo and its ready are legitimate immediately and seed the
		// quorums everyone else needs.
		d := payloadDigest(h.store[seq])
		st := h.echoSt(seq)
		st.digest = d
		st.havePayload = true
		st.echoed = true
		st.readySent = true
		h.recordEcho(now, h.id, seq, d, st)
		h.recordReady(now, h.id, seq, d, st)
		h.broadcastMeta(MsgEcho, seq, d)
		h.broadcastMeta(MsgReady, seq, d)
	}
	return seq
}

type outboundMsg struct {
	to HostID
	m  Message
}

// emit wraps Env.Send; every outbound message funnels through here. With
// piggybacking enabled, messages are buffered and flushed — bundled per
// destination — when the current activation ends.
func (h *Host) emit(to HostID, m Message) {
	if to == h.id || to == Nil {
		return
	}
	if h.params.Piggyback {
		h.outbox = append(h.outbox, outboundMsg{to: to, m: m})
		return
	}
	h.env.Send(to, m)
}

// begin marks the start of an activation (a received message, a tick, or
// a broadcast); the matching end flushes the outbox once the outermost
// activation finishes.
func (h *Host) begin() { h.activationDepth++ }

func (h *Host) end() {
	h.activationDepth--
	if h.activationDepth > 0 || len(h.outbox) == 0 {
		return
	}
	pending := h.outbox
	h.outbox = nil
	// Group per destination, preserving first-appearance order for
	// determinism and in-bundle message order.
	order := make([]HostID, 0, 4)
	byDest := make(map[HostID][]Message, 4)
	for _, out := range pending {
		if _, seen := byDest[out.to]; !seen {
			order = append(order, out.to)
		}
		byDest[out.to] = append(byDest[out.to], out.m)
	}
	for _, to := range order {
		parts := byDest[to]
		if len(parts) == 1 {
			h.env.Send(to, parts[0])
			continue
		}
		h.env.Send(to, Message{Kind: MsgBundle, Parts: parts})
	}
}

// sendMarking sends a data message and optimistically records the
// sequence number in MAP for the target, so the periodic gap filler does
// not immediately resend it. If the message is lost, the target's next
// INFO exchange restores the truth and the filler retries. The confirmed
// view is deliberately not touched.
func (h *Host) sendMarking(to HostID, m Message) {
	s := h.maps[to]
	s.Add(m.Seq)
	h.maps[to] = s
	h.emit(to, m)
}

// learnHas records first-hand evidence that a peer holds one message.
func (h *Host) learnHas(from HostID, q seqset.Seq) {
	s := h.maps[from]
	s.Add(q)
	h.maps[from] = s
	c := h.confirmed[from]
	c.Add(q)
	h.confirmed[from] = c
}

// learnInfo records an authoritative INFO snapshot from a peer, replacing
// both the working MAP entry (clearing stale optimistic marks) and the
// confirmed view. The entries are copy-on-write snapshots: no run
// storage is copied until one side mutates.
func (h *Host) learnInfo(from HostID, info seqset.Set) {
	h.maps[from] = info.Snapshot()
	h.confirmed[from] = info.Snapshot()
}

func (h *Host) event(now time.Duration, kind EventKind, peer HostID, seq seqset.Seq) {
	if h.observer != nil {
		h.observer(Event{At: now, Kind: kind, Host: h.id, Peer: peer, Seq: seq})
	}
}

// observeCostBit maintains CLUSTER_i per §4.2: a message from j arriving
// with the cost bit set evicts j from the cluster; one arriving cheaply
// admits it. Static and none modes (§6) freeze the set instead.
func (h *Host) observeCostBit(from HostID, costBit bool) {
	if from == h.id || h.params.ClusterMode != ClusterDynamic {
		return
	}
	if costBit {
		delete(h.cluster, from)
	} else {
		h.cluster[from] = true
	}
}

// HandleMessage processes one received message. costBit reports whether
// the network flagged the message as having traversed an expensive link.
func (h *Host) HandleMessage(now time.Duration, from HostID, costBit bool, m Message) {
	if from == h.id || from == Nil {
		return
	}
	h.begin()
	defer h.end()
	h.observeCostBit(from, costBit)
	h.noteHeard(now, from)
	// Any inbound message is new evidence; an exhausted attachment
	// procedure may be worth re-running.
	h.attach.exhausted = false
	if from == h.parent {
		h.lastFromParent = now
	}
	if m.Kind == MsgBundle {
		for _, part := range m.Parts {
			if part.Kind != MsgBundle { // bundles never nest
				h.dispatch(now, from, part)
			}
		}
		return
	}
	h.dispatch(now, from, m)
}

func (h *Host) dispatch(now time.Duration, from HostID, m Message) {
	switch m.Kind {
	case MsgData:
		h.handleData(now, from, m)
	case MsgInfo:
		h.handleInfo(now, from, m)
	case MsgInfoDelta:
		h.handleInfoDelta(now, from, m)
	case MsgAttachReq:
		h.handleAttachReq(now, from, m)
	case MsgAttachAccept:
		h.handleAttachAccept(now, from, m)
	case MsgAttachReject:
		h.handleAttachReject(now, from)
	case MsgDetach:
		h.handleDetach(now, from)
	case MsgEcho:
		h.handleEcho(now, from, m)
	case MsgReady:
		h.handleReady(now, from, m)
	case MsgSyncReq:
		h.handleSyncReq(now, from, m)
	case MsgSyncResp:
		h.handleSyncResp(now, from, m)
	case MsgSnapReq:
		h.handleSnapReq(now, from, m)
	case MsgSnapChunk:
		h.handleSnapChunk(now, from, m)
	}
}

func (h *Host) handleData(now time.Duration, from HostID, m Message) {
	if m.Seq == 0 {
		return
	}
	// The sender evidently has the message.
	h.learnHas(from, m.Seq)

	if m.Seq <= h.prunedTo || h.info.Contains(m.Seq) {
		h.event(now, EvDuplicate, from, m.Seq)
		return
	}
	if h.params.EchoReady {
		h.handleDataEcho(now, from, m)
		return
	}
	// §4.1: a message numbered higher than anything seen so far is
	// accepted only from the parent. Lower-numbered messages are gap
	// fills and are accepted from anyone — they do not alter the < order
	// among INFO sets.
	newMax := m.Seq > h.info.Max()
	if newMax && from != h.parent {
		h.event(now, EvRejected, from, m.Seq)
		if !m.GapFill {
			// The sender believes we are its child (stale CHILDREN after a
			// reattachment the detach notice for which was lost); correct it.
			h.emit(from, Message{Kind: MsgDetach})
		}
		return
	}
	h.info.Add(m.Seq)
	h.store[m.Seq] = append([]byte(nil), m.Payload...)
	h.env.Deliver(m.Seq, h.store[m.Seq])
	h.event(now, EvAccepted, from, m.Seq)

	if newMax && !m.GapFill {
		// Normal downward propagation: forward to all children.
		fwd := Message{Kind: MsgData, Seq: m.Seq, Payload: h.store[m.Seq]}
		for _, c := range h.Children() {
			if c != from {
				h.sendMarking(c, fwd)
			}
		}
		return
	}
	// §4.4: a received gap-filling message is forwarded to those
	// parent-graph neighbours that, according to MAP, do not have it.
	fwd := Message{Kind: MsgData, Seq: m.Seq, Payload: h.store[m.Seq], GapFill: true}
	for _, nb := range h.neighbors() {
		if nb == from || h.maps[nb].Contains(m.Seq) {
			continue
		}
		// Sending a would-be-new-max to a host we do not parent is futile:
		// the receiver's §4.1 rule discards it.
		if !h.children[nb] && m.Seq > h.maps[nb].Max() {
			continue
		}
		h.sendMarking(nb, fwd)
	}
}

func (h *Host) handleInfo(now time.Duration, from HostID, m Message) {
	h.learnInfo(from, m.Info)
	if h.infoView != nil {
		// A full set roots a fresh delta chain: later deltas merge into
		// this view and are checked against the sender's checksum.
		//
		// This Snapshot is the one place a handler retains m.Info's
		// storage past the HandleMessage call. Zero-copy decode paths
		// (live's per-node wire.Decoder) rely on that: they detach Info
		// for MsgInfo frames only. Retaining Info for another kind here
		// requires updating those call sites.
		h.infoView[from] = m.Info.Snapshot()
		h.infoSynced[from] = true
	}
	h.afterInfo(now, from, m.Parent)
}

// handleInfoDelta merges a delta INFO advertisement. Delta members are
// always unioned into MAP and the confirmed view — they are first-hand
// facts about what the sender holds, so the merge is sound even when
// earlier deltas were lost. The reconstructed view replaces the MAP entry
// outright (clearing stale optimistic marks, like a full MsgInfo) only
// when it is rooted at a received full set and matches the sender's
// (max, length) checksum: a subset view with the right member count and
// maximum is the full set.
func (h *Host) handleInfoDelta(now time.Duration, from HostID, m Message) {
	if h.infoView == nil {
		// Delta tracking disabled locally: fall back to the monotone
		// union. Nothing is lost but optimistic-mark clearing.
		h.mergeInfoFacts(from, m.Info)
		h.afterInfo(now, from, m.Parent)
		return
	}
	view := h.infoView[from]
	view.ApplyDelta(m.Info)
	h.infoView[from] = view
	if h.infoSynced[from] && view.Max() == m.Seq && uint64(view.Len()) == m.CheckLen {
		h.learnInfo(from, view)
	} else {
		h.mergeInfoFacts(from, m.Info)
	}
	h.afterInfo(now, from, m.Parent)
}

// mergeInfoFacts unions peer-held sequence numbers into both tracking
// maps without replacing them.
func (h *Host) mergeInfoFacts(from HostID, info seqset.Set) {
	s := h.maps[from]
	s.ApplyDelta(info)
	h.maps[from] = s
	c := h.confirmed[from]
	c.ApplyDelta(info)
	h.confirmed[from] = c
}

// afterInfo is the tail shared by full and delta INFO handling: parent
// gossip and reactive gap filling.
func (h *Host) afterInfo(now time.Duration, from HostID, parent HostID) {
	h.parentOf[from] = parent
	// Parent-pointer gossip keeps CHILDREN consistent in both directions:
	// a host we consider a child that reports a different parent has
	// moved on and is pruned; a host that reports us as its parent is a
	// child we must own, even if we pruned it on a stale report earlier
	// (its attach request and its next routine Info can cross on the
	// wire). Without the re-adoption rule the pair deadlocks: the child
	// keeps hearing our routine Info (so its parent-silence timer never
	// fires) while we never forward it data.
	if h.children[from] && parent != h.id {
		delete(h.children, from)
		h.event(now, EvChildRemoved, from, 0)
	} else if !h.children[from] && parent == h.id {
		h.children[from] = true
		h.event(now, EvChildAdded, from, 0)
	}
	// Reactive gap fill towards parent-graph neighbours; leaders also
	// serve non-neighbour hosts in other clusters (the low-frequency
	// periodic scan covers the rest).
	if h.isNeighbor(from) {
		h.fillGapsOf(from)
	} else if h.IsLeader() && !h.cluster[from] && !h.params.DisableNonNeighborGapFill {
		h.fillGapsOf(from)
	}
}

func (h *Host) handleDetach(now time.Duration, from HostID) {
	if h.children[from] {
		delete(h.children, from)
		h.event(now, EvChildRemoved, from, 0)
	}
	if from == h.parent {
		// A host we considered our parent disowned us (it accepted our
		// attach once but no longer counts us as a child).
		h.parent = Nil
	}
}

// neighbors returns the host parent graph neighbours: the parent (if any)
// and all children, sorted.
func (h *Host) neighbors() []HostID {
	out := make([]HostID, 0, len(h.children)+1)
	if h.parent != Nil {
		out = append(out, h.parent)
	}
	for c := range h.children {
		out = append(out, c)
	}
	slices.Sort(out)
	return out
}

func (h *Host) isNeighbor(j HostID) bool {
	return j != Nil && (j == h.parent || h.children[j])
}

// Tick advances all periodic activities. The runtime must call it roughly
// every Params.TickInterval.
func (h *Host) Tick(now time.Duration) {
	if !h.started {
		h.Start(now)
	}
	h.begin()
	defer h.end()
	// Attach handshake timeout.
	if h.attach.inProgress && now >= h.attach.deadline {
		h.event(now, EvAttachFailed, h.attach.candidate, 0)
		h.noteProbeFailure(now, h.attach.candidate)
		h.attach.excluded[h.attach.candidate] = true
		h.attach.inProgress = false
		// §4.2: on ack timeout the procedure is repeated immediately to
		// find another candidate.
		h.runAttachment(now, false)
	}
	// Parent-silence timeout (§4.3): set parent to NIL and search anew.
	if !h.IsSource() && h.parent != Nil && now-h.lastFromParent > h.params.ParentTimeout {
		h.event(now, EvParentTimeout, h.parent, 0)
		h.noteProbeFailure(now, h.parent)
		h.parent = Nil
		h.runAttachment(now, true)
	}
	// Fast-resync bursts owed to peers that answered while suspected.
	h.flushResyncs(now)
	if !h.IsSource() && now >= h.nextAttach {
		h.nextAttach = now + h.params.AttachPeriod
		h.runAttachment(now, true)
	}
	if now >= h.nextInfoLocal {
		h.nextInfoLocal = now + h.params.InfoClusterPeriod
		h.sendInfoLocal()
		if h.params.EchoReady {
			h.resendEchoMeta()
		}
	}
	if now >= h.nextInfoRemote {
		h.nextInfoRemote = now + h.params.InfoRemotePeriod
		h.sendInfoRemoteNeighbors()
	}
	if now >= h.nextInfoGlobal {
		h.nextInfoGlobal = now + h.params.InfoGlobalPeriod
		h.sendInfoGlobal(now)
	}
	if now >= h.nextGapLocal {
		h.nextGapLocal = now + h.params.GapClusterPeriod
		for _, nb := range h.neighbors() {
			if h.cluster[nb] {
				h.fillGapsOf(nb)
			}
		}
	}
	if now >= h.nextGapRemote {
		h.nextGapRemote = now + h.params.GapRemotePeriod
		for _, nb := range h.neighbors() {
			if !h.cluster[nb] {
				h.fillGapsOf(nb)
			}
		}
	}
	if now >= h.nextGapGlobal {
		h.nextGapGlobal = now + h.params.GapGlobalPeriod
		h.gapFillGlobal(now)
	}
	if h.params.SyncEnabled() && now >= h.nextSync {
		h.nextSync = now + h.params.SyncPeriod
		h.syncPump(now)
	}
	h.snapshotMaybe()
	if h.params.PruneStable {
		h.pruneStable()
		if h.params.EchoReady {
			h.pruneEchoStates()
		}
	}
}

func (h *Host) infoMessage() Message {
	return Message{Kind: MsgInfo, Info: h.info.Snapshot(), Parent: h.parent}
}

// deltaResyncEvery bounds a delta chain: after this many consecutive
// MsgInfoDelta frames to one peer, the next advertisement is a full
// MsgInfo, so a receiver whose view diverged (lost deltas) resynchronizes
// within a bounded number of exchanges.
const deltaResyncEvery = 8

// infoMessageFor returns the INFO advertisement for peer j: a full
// MsgInfo, or — under Params.DeltaInfo — a MsgInfoDelta carrying only the
// runs gained since the last advertisement to j, whenever that coding is
// strictly smaller on the wire. The choice is a pure function of protocol
// state (INFO content and per-peer send history), never of timing. A full
// set is forced when there is no send history, when the resync counter
// expires, or when pruning shrank INFO below the last advertisement (a
// delta cannot express removals).
func (h *Host) infoMessageFor(j HostID) Message {
	if !h.params.DeltaInfo {
		return h.infoMessage()
	}
	last, ok := h.lastSentInfo[j]
	if ok && h.sinceFull[j] < deltaResyncEvery && h.info.ContainsAll(last) {
		delta := h.info.Diff(last)
		// Wire economics: a delta pays 16 bytes per run plus the 8-byte
		// length checksum; a full set pays 16 bytes per run. Send the
		// delta only when strictly cheaper.
		if 16*delta.RunCount()+8 < 16*h.info.RunCount() {
			h.lastSentInfo[j] = h.info.Snapshot()
			h.sinceFull[j]++
			return Message{
				Kind:     MsgInfoDelta,
				Info:     delta,
				Parent:   h.parent,
				Seq:      h.info.Max(),
				CheckLen: uint64(h.info.Len()),
			}
		}
	}
	h.noteFullInfoSent(j)
	return h.infoMessage()
}

// noteFullInfoSent records that peer j was just advertised the complete
// INFO set (routine full MsgInfo, resync burst, or attach handshake), so
// the delta chain restarts from the current state.
func (h *Host) noteFullInfoSent(j HostID) {
	if !h.params.DeltaInfo {
		return
	}
	h.lastSentInfo[j] = h.info.Snapshot()
	h.sinceFull[j] = 0
}

// sendInfoLocal performs the routine intra-cluster INFO + parent-pointer
// exchange.
func (h *Host) sendInfoLocal() {
	for _, j := range h.Cluster() {
		if j != h.id {
			h.emit(j, h.infoMessageFor(j))
		}
	}
}

// sendInfoRemoteNeighbors keeps cross-cluster parent-graph edges fresh.
func (h *Host) sendInfoRemoteNeighbors() {
	for _, nb := range h.neighbors() {
		if !h.cluster[nb] {
			h.emit(nb, h.infoMessageFor(nb))
		}
	}
}

// sendInfoGlobal is the leaders-only advertisement to all non-cluster,
// non-neighbour hosts; it is what lets detached fragments discover each
// other and what lets leaders find better parents (Case II option 3).
func (h *Host) sendInfoGlobal(now time.Duration) {
	if !h.IsLeader() && !h.IsSource() {
		return
	}
	for _, j := range h.peers {
		if j == h.id || h.cluster[j] || h.isNeighbor(j) {
			continue
		}
		if h.suppressed(now, j) {
			h.suppressedSends++
			continue
		}
		h.noteProbeSent(now, j)
		h.emit(j, h.infoMessageFor(j))
		h.touchSuspect(now, j)
	}
}

// fillGapsOf sends the target up to GapFillBatch messages that this host
// holds and the target's MAP entry lacks. For hosts we do not parent,
// only sequence numbers below the target's known maximum are sent —
// anything higher would be discarded by the receiver's §4.1 rule.
func (h *Host) fillGapsOf(j HostID) int {
	their := h.maps[j]
	missing := h.info.Diff(their)
	if missing.Empty() {
		return 0
	}
	isChild := h.children[j]
	limit := h.params.GapFillBatch
	theirMax := their.Max()
	sent := 0
	missing.Each(func(q seqset.Seq) bool {
		if !isChild && q > theirMax {
			return false // ascending iteration: nothing later qualifies
		}
		payload, ok := h.store[q]
		if !ok {
			return true // pruned; skip
		}
		h.sendMarking(j, Message{Kind: MsgData, Seq: q, Payload: payload, GapFill: true})
		sent++
		return sent < limit
	})
	return sent
}

// gapFillGlobal is the §4.4 non-neighbour gap fill: leaders scan all
// known hosts outside their cluster and outside the parent graph
// neighbourhood, filling what they can.
func (h *Host) gapFillGlobal(now time.Duration) {
	if h.params.DisableNonNeighborGapFill {
		return
	}
	if !h.IsLeader() && !h.IsSource() {
		return
	}
	for _, j := range h.peers {
		if j == h.id || h.cluster[j] || h.isNeighbor(j) {
			continue
		}
		if h.suppressed(now, j) {
			h.suppressedSends++
			continue
		}
		// Re-arm the backoff window only when traffic actually went out;
		// an empty fill must not silently push the next probe further.
		if h.fillGapsOf(j) > 0 {
			h.touchSuspect(now, j)
		}
	}
}

// pruneStable implements §6 pruning: sequence numbers 1..p that every
// participant is known (via MAP) to hold are dropped from INFO and the
// store. Unknown hosts (empty MAP entries) hold the prefix at zero, so
// pruning is conservative — unless this host holds a checkpoint, which
// liberates the floor: any prefix the checkpoint covers can be healed by
// snapshot transfer instead of per-message redelivery, so the all-hold
// requirement no longer binds below the watermark. Liberation requires
// snapMark > 0, which requires Params.SnapshotsEnabled(), so the
// snapshot path is guaranteed to exist exactly when a host may need it.
func (h *Host) pruneStable() {
	p := h.ownPrefix()
	for _, j := range h.peers {
		if j == h.id {
			continue
		}
		if q := h.contiguousPrefix(h.confirmed[j]); q < p {
			p = q
		}
		if p == 0 {
			break
		}
	}
	if h.snapMark > p {
		p = h.snapMark
	}
	// The floor must be monotonic: a reordered routine Info can replace a
	// peer's confirmed view with an older snapshot, shrinking the computed
	// prefix. Regressing prunedTo would reopen the duplicate window for
	// already-pruned sequence numbers.
	if p == 0 || p-1 <= h.prunedTo {
		return
	}
	h.info.Prune(p - 1) // keep p itself so Max stays meaningful even if alone
	h.prunedTo = p - 1
	for q := range h.store {
		if q < p {
			delete(h.store, q)
		}
	}
}

// contiguousPrefix returns the largest p such that 1..p are all members.
func (h *Host) contiguousPrefix(s seqset.Set) seqset.Seq {
	ivs := s.Intervals()
	if len(ivs) == 0 || ivs[0].Lo != 1 {
		return 0
	}
	return ivs[0].Hi
}

// ownPrefix is contiguousPrefix of INFO_i accounting for the pruning
// floor: pruned members are held by definition, so a run starting at
// prunedTo+1 continues the prefix. Without this, pruning would stall
// after its first round (INFO would never again start at 1).
func (h *Host) ownPrefix() seqset.Seq {
	ivs := h.info.Intervals()
	if len(ivs) == 0 || ivs[0].Lo > h.prunedTo+1 {
		return h.prunedTo
	}
	return ivs[0].Hi
}
