package core

import (
	"time"

	"rbcast/internal/seqset"
)

// This file implements the §4.2 attachment procedure and the §4.3 cycle
// rules.
//
// The procedure distinguishes three cases by the host's current parent:
//
//	Case I   — no parent;
//	Case II  — parent in a different cluster (the host is a cluster
//	           leader);
//	Case III — parent in the same cluster.
//
// and tries that case's options in order until a candidate parent is
// found or the options are exhausted. A found candidate gets an attach
// request; on ack timeout the candidate is excluded and the procedure
// repeats. Throughout, a host only ever attaches to a parent whose INFO
// set (per MAP) is not smaller than its own — the invariant §4.3's
// acyclicity argument rests on.

// runAttachment activates the attachment procedure. fresh indicates a
// periodic activation (which clears the excluded set) as opposed to an
// immediate retry after a timeout or rejection.
func (h *Host) runAttachment(now time.Duration, fresh bool) {
	if h.IsSource() || h.attach.inProgress || h.attach.exhausted {
		return
	}
	if fresh {
		h.attach.excluded = nil
	}
	var cand HostID
	switch {
	case h.parent == Nil:
		cand = h.pickCaseI(now)
	case !h.cluster[h.parent]:
		cand = h.pickCaseII(now)
	default:
		cand = h.pickCaseIII(now)
	}
	if cand == Nil {
		if fresh && h.parent == Nil {
			h.attach.barren++
		}
		// A timeout/reject retry chain that has run out of candidates has
		// excluded every option; re-sweeping each AttachPeriod buys
		// nothing until new evidence (any inbound message) arrives.
		if !fresh {
			h.attach.exhausted = true
		}
		return
	}
	h.attach.barren = 0
	h.attach.inProgress = true
	h.attach.candidate = cand
	h.attach.deadline = now + h.params.AttachTimeout
	if h.attach.excluded == nil {
		h.attach.excluded = make(map[HostID]bool)
	}
	h.noteFullInfoSent(cand)
	h.emit(cand, Message{Kind: MsgAttachReq, Info: h.info.Snapshot()})
}

// eligible applies the filters common to every option: never self, never
// the current parent (re-attaching is a no-op), never an excluded
// candidate, never a suspected peer still inside its backoff window, and
// never a host whose INFO (per MAP) is smaller than ours.
func (h *Host) eligible(now time.Duration, j HostID) bool {
	if j == h.id || j == h.parent || h.attach.excluded[j] {
		return false
	}
	if h.suppressed(now, j) {
		return false
	}
	return seqset.LessOrSimilar(h.info, h.maps[j])
}

// viewsAsLeader reports whether, per p_i[], host j is a cluster leader:
// its parent is NIL/unknown or lies outside this host's cluster view.
func (h *Host) viewsAsLeader(j HostID) bool {
	pj := h.parentOf[j]
	return pj == Nil || !h.cluster[pj]
}

// best returns the candidate maximizing (INFO max, static order, id) —
// a deterministic choice that prefers the freshest parent, and among
// equals the highest-ordered one, so that a cluster converges on a single
// leader.
func (h *Host) best(cands []HostID) HostID {
	var out HostID
	for _, j := range cands {
		if out == Nil {
			out = j
			continue
		}
		jm, om := h.maps[j].Max(), h.maps[out].Max()
		switch {
		case jm > om:
			out = j
		case jm == om && h.order[j] > h.order[out]:
			out = j
		case jm == om && h.order[j] == h.order[out] && j > out:
			out = j
		}
	}
	return out
}

// pickCaseI implements Case I (host currently without a parent).
func (h *Host) pickCaseI(now time.Duration) HostID {
	// Option 1: a same-cluster leader with a strictly greater INFO set.
	if j := h.optSameClusterLeaderGreater(now); j != Nil {
		return j
	}
	// Option 2: a same-cluster leader with a similar INFO set and a
	// greater static order.
	if j := h.optSameClusterLeaderSimilarHigherOrder(now); j != Nil {
		return j
	}
	// Option 3: a host in a different cluster with a greater INFO set.
	if j := h.optOtherClusterGreaterThan(now, h.info); j != Nil {
		return j
	}
	// Option 4 (beyond §4.2): a host in a different cluster with a
	// similar INFO set and a greater static order, or the source itself.
	// §4.2's option 3 assumes a detached host's INFO has fallen behind
	// some other cluster's, so a strictly greater parent exists; the
	// catch-up sync layer breaks that assumption — a healed host can
	// reach the global watermark before its first attachment sweep and
	// then find no strictly greater candidate anywhere, wedging detached
	// forever (its cluster peers may all be its own descendants, ruling
	// options 1 and 2 out too). Order-increasing similar attachment is
	// option 2's rule applied across clusters, so the acyclicity
	// argument is untouched: a cycle of similar-INFO edges would need
	// strictly increasing static order around the loop, and an edge to
	// the source terminates (the source never attaches to anyone).
	//
	// The escape is a last resort: it engages only after repeated barren
	// periodic sweeps, and only once this host holds data. Both gates
	// target the same hazard — at startup every INFO set is empty and
	// hence trivially similar, and an eager escape would reshape the
	// young tree into order-chasing cross-cluster chains instead of
	// letting the paper's options converge it.
	if h.attach.barren < escapeBarrenSweeps || h.info.Empty() {
		return Nil
	}
	return h.optOtherClusterSimilarEscape(now)
}

// escapeBarrenSweeps is how many consecutive candidate-less periodic
// sweeps a detached host tolerates before Case I's option 4 engages.
const escapeBarrenSweeps = 2

func (h *Host) optOtherClusterSimilarEscape(now time.Duration) HostID {
	var cands []HostID
	for _, j := range h.peers {
		if h.cluster[j] || !h.eligible(now, j) {
			continue
		}
		if seqset.Similar(h.info, h.maps[j]) && (j == h.source || h.order[h.id] < h.order[j]) {
			cands = append(cands, j)
		}
	}
	return h.best(cands)
}

// pickCaseII implements Case II (parent in a different cluster — the
// host is a cluster leader).
func (h *Host) pickCaseII(now time.Duration) HostID {
	// Options 1 and 2 are Case I's: prefer rejoining the cluster's tree.
	if j := h.optSameClusterLeaderGreater(now); j != Nil {
		return j
	}
	if j := h.optSameClusterLeaderSimilarHigherOrder(now); j != Nil {
		return j
	}
	// Option 3: a host in a different cluster whose INFO exceeds the
	// current parent's — the delay-chasing rule, which also detects a
	// disconnected parent whose INFO view falls behind.
	return h.optOtherClusterGreaterThan(now, h.maps[h.parent])
}

func (h *Host) optSameClusterLeaderGreater(now time.Duration) HostID {
	var cands []HostID
	for _, j := range h.Cluster() {
		if j == h.id || !h.eligible(now, j) {
			continue
		}
		if h.viewsAsLeader(j) && seqset.Less(h.info, h.maps[j]) {
			cands = append(cands, j)
		}
	}
	return h.best(cands)
}

func (h *Host) optSameClusterLeaderSimilarHigherOrder(now time.Duration) HostID {
	var cands []HostID
	for _, j := range h.Cluster() {
		if j == h.id || !h.eligible(now, j) {
			continue
		}
		if h.viewsAsLeader(j) && seqset.Similar(h.info, h.maps[j]) && h.order[h.id] < h.order[j] {
			cands = append(cands, j)
		}
	}
	return h.best(cands)
}

func (h *Host) optOtherClusterGreaterThan(now time.Duration, bar seqset.Set) HostID {
	var cands []HostID
	for _, j := range h.peers {
		if h.cluster[j] || !h.eligible(now, j) {
			continue
		}
		if seqset.Less(bar, h.maps[j]) {
			cands = append(cands, j)
		}
	}
	return h.best(cands)
}

// pickCaseIII implements Case III (parent in the same cluster): attach to
// an ancestor (other than the parent) that is a same-cluster leader with
// an INFO set not smaller than the host's own. Walking the ancestor chain
// doubles as the §4.3 intra-cluster cycle detector: a host that finds
// itself among its own ancestors is on a cycle, and if it carries the
// highest static order on that cycle it must detach and fall back to
// Case I.
func (h *Host) pickCaseIII(now time.Duration) HostID {
	chain, cyclic := h.ancestorChain()
	if cyclic {
		if h.maxOrderOn(append(chain, h.id)) == h.id {
			old := h.parent
			h.parent = Nil
			h.emit(old, Message{Kind: MsgDetach})
			h.event(now, EvCycleBroken, old, 0)
			return h.pickCaseI(now)
		}
		return Nil
	}
	for _, j := range chain {
		if j == h.parent || !h.eligible(now, j) {
			continue
		}
		if h.cluster[j] && h.viewsAsLeader(j) && seqset.LessOrSimilar(h.info, h.maps[j]) {
			return j
		}
	}
	return Nil
}

// ancestorChain follows p_i[] pointers from the parent upward. It returns
// the ancestors in order and whether the walk returned to this host (an
// intra-cluster cycle through i). The walk stops at NIL, at an unknown
// pointer, at a repeated host, or after len(peers) steps.
func (h *Host) ancestorChain() (chain []HostID, cyclic bool) {
	visited := map[HostID]bool{h.id: true}
	cur := h.parent
	for steps := 0; steps < len(h.peers) && cur != Nil; steps++ {
		if cur == h.id {
			return chain, true
		}
		if visited[cur] {
			// A cycle above us that does not pass through us; the hosts on
			// it will break it themselves.
			return chain, false
		}
		visited[cur] = true
		chain = append(chain, cur)
		cur = h.parentOf[cur]
	}
	return chain, false
}

// maxOrderOn returns the host with the greatest static order among hosts.
func (h *Host) maxOrderOn(hosts []HostID) HostID {
	var out HostID
	for _, j := range hosts {
		if out == Nil || h.order[j] > h.order[out] {
			out = j
		}
	}
	return out
}

// handleAttachReq processes an adoption request: the requester becomes a
// child and immediately receives the messages it is missing (§4.4 attach
// gap fill). A request from our own parent is declined — accepting would
// instantly create a two-cycle.
func (h *Host) handleAttachReq(now time.Duration, from HostID, m Message) {
	if from == h.parent {
		h.emit(from, Message{Kind: MsgAttachReject})
		return
	}
	// Crossing requests (we asked from; from asked us) would form an
	// instant two-cycle if both accepted; the lower-ordered host yields.
	if h.attach.inProgress && h.attach.candidate == from && h.order[h.id] < h.order[from] {
		h.emit(from, Message{Kind: MsgAttachReject})
		return
	}
	h.learnInfo(from, m.Info)
	h.parentOf[from] = h.id
	if !h.children[from] {
		h.children[from] = true
		h.event(now, EvChildAdded, from, 0)
	}
	h.noteFullInfoSent(from)
	h.emit(from, Message{Kind: MsgAttachAccept, Info: h.info.Snapshot()})
	// Forward what the child is missing and we have, up to the limit; the
	// periodic neighbour gap fill covers any remainder.
	missing := h.info.Diff(m.Info)
	sent := 0
	missing.Each(func(q seqset.Seq) bool {
		payload, ok := h.store[q]
		if !ok {
			return true
		}
		h.sendMarking(from, Message{Kind: MsgData, Seq: q, Payload: payload, GapFill: true})
		sent++
		return sent < h.params.AttachFillLimit
	})
}

// handleAttachAccept completes the handshake begun by runAttachment.
func (h *Host) handleAttachAccept(now time.Duration, from HostID, m Message) {
	if !h.attach.inProgress || from != h.attach.candidate {
		// A stale acceptance from an earlier candidate: we are attached
		// elsewhere by now, so correct the sender's CHILDREN set.
		if from != h.parent {
			h.emit(from, Message{Kind: MsgDetach})
		}
		return
	}
	old := h.parent
	h.parent = from
	h.parentOf[h.id] = from
	h.lastFromParent = now
	h.learnInfo(from, m.Info)
	h.attach = attachState{}
	if old != Nil && old != from {
		// §4.2: the old parent is notified of the change.
		h.emit(old, Message{Kind: MsgDetach})
	}
	h.event(now, EvAttached, from, 0)
}

// handleAttachReject excludes the candidate and retries immediately.
func (h *Host) handleAttachReject(now time.Duration, from HostID) {
	if !h.attach.inProgress || from != h.attach.candidate {
		return
	}
	h.event(now, EvAttachFailed, from, 0)
	if h.attach.excluded == nil {
		h.attach.excluded = make(map[HostID]bool)
	}
	h.attach.excluded[from] = true
	h.attach.inProgress = false
	h.runAttachment(now, false)
}
