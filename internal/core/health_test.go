package core_test

import (
	"testing"
	"time"

	"rbcast/internal/core"
)

// backoffParams returns quiet params with the health layer enabled:
// suspicion after 2 consecutive probe failures, 10 s base backoff.
func backoffParams() core.Params {
	p := quietParams()
	p.BackoffBase = 10 * time.Second
	p.BackoffMax = 80 * time.Second
	p.BackoffMultiplier = 2
	p.SuspicionAfter = 2
	return p
}

// eventHost builds a host that records protocol events.
func eventHost(t *testing.T, id core.HostID, params core.Params, env core.Env) (*core.Host, *[]core.Event) {
	t.Helper()
	var events []core.Event
	h, err := core.NewHost(core.Config{
		ID:       id,
		Source:   1,
		Peers:    []core.HostID{1, 2, 3, 4, 5},
		Params:   params,
		Observer: func(e core.Event) { events = append(events, e) },
	}, env)
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	h.Start(0)
	return h, &events
}

func eventsOfKind(events []core.Event, k core.EventKind) []core.Event {
	var out []core.Event
	for _, e := range events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// suspectPeer5 drives host 2 through two attach-ack timeouts toward host
// 5 (the only candidate), with a gossip message from non-candidate host 4
// between them to clear attach exhaustion. Returns the time of the second
// timeout, at which host 5 became suspected.
func suspectPeer5(t *testing.T, h *core.Host, env *fakeEnv) time.Duration {
	t.Helper()
	// Host 5: out of cluster, greater INFO — the only attach candidate.
	infoFrom(h, time.Hour, 5, true, 8, core.Nil)
	h.Tick(2 * time.Hour) // periodic activation: attach req to 5
	if n := len(env.ofKind(core.MsgAttachReq)); n != 1 {
		t.Fatalf("setup: attach requests = %d, want 1", n)
	}
	h.Tick(2*time.Hour + 400*time.Millisecond) // ack timeout: failure #1
	// Gossip from host 4 (out of cluster, empty INFO — not a candidate)
	// is the new evidence that lets the procedure re-run.
	infoFrom(h, 2*time.Hour+time.Second, 4, true, 0, core.Nil)
	h.Tick(4 * time.Hour) // fresh activation: retry 5
	if n := len(env.ofKind(core.MsgAttachReq)); n != 2 {
		t.Fatalf("setup: attach requests = %d after retry, want 2", n)
	}
	at := 4*time.Hour + 400*time.Millisecond
	h.Tick(at) // ack timeout: failure #2 → suspected
	return at
}

func TestBackoffDisabledByZeroParams(t *testing.T) {
	if core.DefaultParams().BackoffEnabled() {
		t.Fatal("DefaultParams has backoff enabled")
	}
	env := &fakeEnv{}
	h, events := eventHost(t, 2, quietParams(), env)
	suspectPeer5(t, h, env)
	if got := eventsOfKind(*events, core.EvPeerSuspected); len(got) != 0 {
		t.Errorf("suspected events with layer disabled: %v", got)
	}
	if ph := h.PeerHealthOf(5); ph.Suspected {
		t.Errorf("peer 5 suspected with layer disabled: %+v", ph)
	}
	if n := h.SuppressedSends(); n != 0 {
		t.Errorf("suppressed sends = %d with layer disabled", n)
	}
}

func TestSuspicionAfterConsecutiveAttachTimeouts(t *testing.T) {
	env := &fakeEnv{}
	h, events := eventHost(t, 2, backoffParams(), env)
	at := suspectPeer5(t, h, env)

	if got := eventsOfKind(*events, core.EvPeerSuspected); len(got) != 1 || got[0].Peer != 5 {
		t.Fatalf("suspected events = %v, want one for host 5", got)
	}
	ph := h.PeerHealthOf(5)
	if !ph.Suspected || ph.Failures < 2 {
		t.Errorf("health of 5 = %+v, want suspected with ≥ 2 failures", ph)
	}
	if ph.NextContact <= at {
		t.Errorf("NextContact = %v, want armed past %v", ph.NextContact, at)
	}
	if got := h.SuspectedPeers(); len(got) != 1 || got[0] != 5 {
		t.Errorf("SuspectedPeers = %v, want [5]", got)
	}
	// One failure alone must not suspect.
	if got := eventsOfKind(*events, core.EvPeerSuspected); got[0].At <= 2*time.Hour+400*time.Millisecond {
		t.Errorf("suspected already at first failure: %v", got)
	}
}

func TestBackoffGatesAttachRetries(t *testing.T) {
	env := &fakeEnv{}
	h, _ := eventHost(t, 2, backoffParams(), env)
	suspectPeer5(t, h, env)

	// New evidence clears exhaustion, but 5 is inside its backoff window:
	// the fresh activation must skip it.
	infoFrom(h, 4*time.Hour+500*time.Millisecond, 4, true, 0, core.Nil)
	h.Tick(4*time.Hour + time.Second)
	if n := len(env.ofKind(core.MsgAttachReq)); n != 2 {
		t.Fatalf("attach requests = %d inside backoff window, want 2", n)
	}
	// Past NextContact the candidate is eligible again.
	next := h.PeerHealthOf(5).NextContact
	h.Tick(next + time.Hour) // next periodic activation after the window
	if n := len(env.ofKind(core.MsgAttachReq)); n != 3 {
		t.Errorf("attach requests = %d past backoff window, want 3", n)
	}
}

func TestBackoffGatesGlobalInfoAndRearms(t *testing.T) {
	p := backoffParams()
	p.InfoGlobalPeriod = 100 * time.Millisecond
	env := &fakeEnv{}
	h, _ := eventHost(t, 2, p, env)
	at := suspectPeer5(t, h, env)

	// The same tick that recorded the second failure also fired the
	// periodic global INFO (period 100 ms): host 5 must have been gated.
	if n := h.SuppressedSends(); n == 0 {
		t.Error("no suppressed sends while 5 inside backoff window")
	}
	infoTo5 := func() int {
		n := 0
		for _, s := range env.ofKind(core.MsgInfo) {
			if s.to == 5 {
				n++
			}
		}
		return n
	}
	before := infoTo5()
	h.Tick(at + 50*time.Millisecond) // still gated (backoff ≥ 7.5 s)
	if got := infoTo5(); got != before {
		t.Errorf("info to 5 = %d inside window, want %d", got, before)
	}
	// Past NextContact the probe goes out and the window re-arms.
	next := h.PeerHealthOf(5).NextContact
	h.Tick(next + 100*time.Millisecond)
	if got := infoTo5(); got != before+1 {
		t.Errorf("info to 5 = %d past window, want %d", got, before+1)
	}
	if re := h.PeerHealthOf(5).NextContact; re <= next {
		t.Errorf("NextContact not re-armed after gated probe: %v ≤ %v", re, next)
	}
}

func TestRecoveryClearsSuspicionAndBurstsResync(t *testing.T) {
	env := &fakeEnv{}
	h, events := eventHost(t, 2, backoffParams(), env)
	at := suspectPeer5(t, h, env)

	// The suspected peer answers: suspicion clears at message latency.
	infoFrom(h, at+time.Second, 5, true, 9, core.Nil)
	if got := eventsOfKind(*events, core.EvPeerRecovered); len(got) != 1 || got[0].Peer != 5 {
		t.Fatalf("recovered events = %v, want one for host 5", got)
	}
	if ph := h.PeerHealthOf(5); ph.Suspected || ph.Failures != 0 {
		t.Errorf("health of 5 after recovery = %+v, want cleared", ph)
	}
	// The next tick owes 5 a fast-resync burst: an INFO exchange now, not
	// at the next periodic INFO instant.
	env.reset()
	h.Tick(at + time.Second + 25*time.Millisecond)
	var gotInfo bool
	for _, s := range env.ofKind(core.MsgInfo) {
		if s.to == 5 {
			gotInfo = true
		}
	}
	if !gotInfo {
		t.Errorf("no resync INFO to recovered peer; sent = %v", env.sent)
	}
	if n := h.ResyncBursts(); n != 1 {
		t.Errorf("ResyncBursts = %d, want 1", n)
	}
}

func TestBackoffParamsValidation(t *testing.T) {
	base := core.DefaultParams()
	if err := base.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	ok := base.WithBackoff()
	if err := ok.Validate(); err != nil {
		t.Errorf("WithBackoff params invalid: %v", err)
	}
	if !ok.BackoffEnabled() {
		t.Error("WithBackoff not enabled")
	}
	cases := map[string]func(*core.Params){
		"suspicion without base": func(p *core.Params) { p.SuspicionAfter = 2 },
		"max below base":         func(p *core.Params) { p.BackoffMax = p.BackoffBase / 2 },
		"multiplier below one":   func(p *core.Params) { p.BackoffMultiplier = 0.5 },
		"zero suspicion":         func(p *core.Params) { p.SuspicionAfter = 0 },
	}
	for name, mutate := range cases {
		p := ok
		if name == "suspicion without base" {
			p = base
		}
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, p)
		}
	}
}
