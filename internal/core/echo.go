package core

import (
	"hash/fnv"
	"slices"
	"time"

	"rbcast/internal/seqset"
)

// Echo/ready hardening (Params.EchoReady): an optional Bracha-flavoured
// layer over the paper's protocol for tolerating hosts that actively
// lie. The paper's failure model is benign — links lose and reorder,
// hosts fall silent — so a single forwarding host can equivocate:
// deliver payload A for sequence s to one subtree and payload B to
// another, and every correct host accepts whatever its parent relayed.
//
// With EchoReady on, receiving a data message no longer delivers it.
// Instead the host holds the payload as *pending*, votes by echoing
// (seq, digest) to every peer, and delivers only when the pending
// digest is backed by 2f+1 ready votes, where readies are sent after an
// echo quorum of (n+f)/2+1 matching votes (or amplified after f+1
// readies). Two digests can never both gather an echo quorum while at
// most f hosts are faulty, so correct hosts agree on the payload for
// every sequence number they deliver — equivocation costs the
// adversary liveness for that message, never agreement. Conflicting
// votes or payloads for one sequence number are surfaced as
// EvEquivocation events and counted (Equivocations), giving the harness
// its detection counter.
//
// Tree propagation is unchanged: payloads still flow parent-to-child
// and via gap fills, and a pending payload is forwarded immediately —
// only *delivery* is quorum-gated. Echo and ready frames are
// best-effort like everything else, so pending votes are re-advertised
// at the routine INFO cadence, and a host that already delivered
// answers any echo for that sequence number with its ready vote,
// letting stragglers assemble a quorum long after the original burst.
//
// One §4.1 relaxation applies: a data message above the receiver's
// current maximum is normally accepted only from the parent, but a
// payload whose digest already holds a ready quorum is accepted from
// anyone — the quorum, not the sender, is the authority. This lets a
// host escape an equivocating parent once the rest of the network has
// settled on the real payload.

// payloadDigest fingerprints a data payload for echo/ready voting.
// FNV-64a is not collision-resistant against an adversary who can
// choose payloads offline; it is the honest-host agreement fingerprint
// this simulator needs, chosen because the repo already leans on FNV
// for deterministic seeding and carries no crypto dependencies.
func payloadDigest(p []byte) uint64 {
	d := fnv.New64a()
	d.Write(p)
	return d.Sum64()
}

// echoState tracks one sequence number's voting round.
type echoState struct {
	// payload/digest is the pending payload (nil once delivered; the
	// digest is retained for post-delivery ready replies).
	payload     []byte
	digest      uint64
	havePayload bool
	// echoed / readySent record this host's own votes.
	echoed    bool
	readySent bool
	// echoes / readies count votes per digest; echoFrom / readyFrom pin
	// each peer to its first vote so a peer voting for two digests is
	// counted once and flagged as equivocation.
	echoes    map[uint64]map[HostID]bool
	readies   map[uint64]map[HostID]bool
	echoFrom  map[HostID]uint64
	readyFrom map[HostID]uint64
}

// echoSt returns (creating on demand) the voting state for seq.
func (h *Host) echoSt(seq seqset.Seq) *echoState {
	st, ok := h.echo[seq]
	if !ok {
		st = &echoState{
			echoes:    make(map[uint64]map[HostID]bool),
			readies:   make(map[uint64]map[HostID]bool),
			echoFrom:  make(map[HostID]uint64),
			readyFrom: make(map[HostID]uint64),
		}
		h.echo[seq] = st
	}
	return st
}

// The quorum inequalities. Write n = len(h.peers) and f = byzF(). The
// agreement argument below rests on four arithmetic facts, which
// quorumlint (internal/analysis) proves mechanically for *every*
// parameter combination Params.Validate admits — the prose here is the
// why, the analyzer is the guarantee that edits keep it true:
//
//   intersection   2·echoQuorum − n − f − 1 ≥ 0
//     Two echo quorums for different digests overlap in at least
//     2·eq − n ≥ f+1 hosts; at most f of those are faulty, so an
//     honest host would have to echo both digests — and honest hosts
//     echo once. Hence at most one digest can reach echoQuorum.
//   honest majority   readyQuorum − 2f − 1 ≥ 0
//     A delivered ready quorum of 2f+1 contains at least f+1 correct
//     hosts, enough to keep answering retransmit requests forever.
//   amplification   readyAmplify − f − 1 ≥ 0
//     f+1 readies exceed the faulty population, so at least one came
//     from a correct host that saw an echo quorum first-hand.
//   defaulting   f ≤ ⌊(n−1)/3⌋ when EchoMaxFaulty is unset
//     The defaulted budget respects the classical n > 3f resilience
//     bound.
//
// quorumlint additionally proves the threshold arithmetic overflow-free;
// that proof needs f bounded, which is what Params.MaxEchoFaulty is for.

// byzF is the assumed Byzantine budget f for quorum sizing.
func (h *Host) byzF() int {
	if h.params.EchoMaxFaulty > 0 {
		return h.params.EchoMaxFaulty
	}
	return (len(h.peers) - 1) / 3
}

// echoQuorum is the matching-echo count that justifies a ready vote:
// (n+f)/2+1, so two distinct digests cannot both reach it while at most
// f voters are faulty.
func (h *Host) echoQuorum() int { return (len(h.peers)+h.byzF())/2 + 1 }

// readyQuorum is the ready count that justifies delivery: 2f+1, of
// which at least f+1 are correct hosts that will keep answering.
func (h *Host) readyQuorum() int { return 2*h.byzF() + 1 }

// readyAmplify is the Bracha amplification threshold: f+1 readies prove
// at least one correct host saw an echo quorum, so joining is safe even
// without having seen the quorum first-hand.
func (h *Host) readyAmplify() int { return h.byzF() + 1 }

// Equivocations returns how many conflicting-vote observations this
// host has made under EchoReady (0 when the mode is off).
func (h *Host) Equivocations() uint64 { return h.equivocations }

// recordEcho counts one echo vote for (seq, d). It reports whether the
// vote was fresh; a peer changing its vote is flagged as equivocation
// and not re-counted.
func (h *Host) recordEcho(now time.Duration, from HostID, seq seqset.Seq, d uint64, st *echoState) bool {
	if prev, ok := st.echoFrom[from]; ok {
		if prev != d {
			h.equivocations++
			h.event(now, EvEquivocation, from, seq)
		}
		return false
	}
	st.echoFrom[from] = d
	set := st.echoes[d]
	if set == nil {
		set = make(map[HostID]bool)
		st.echoes[d] = set
	}
	set[from] = true
	return true
}

// recordReady is recordEcho for the ready phase.
func (h *Host) recordReady(now time.Duration, from HostID, seq seqset.Seq, d uint64, st *echoState) bool {
	if prev, ok := st.readyFrom[from]; ok {
		if prev != d {
			h.equivocations++
			h.event(now, EvEquivocation, from, seq)
		}
		return false
	}
	st.readyFrom[from] = d
	set := st.readies[d]
	if set == nil {
		set = make(map[HostID]bool)
		st.readies[d] = set
	}
	set[from] = true
	return true
}

// broadcastMeta sends an echo or ready vote to every peer.
func (h *Host) broadcastMeta(kind MsgKind, seq seqset.Seq, d uint64) {
	m := Message{Kind: kind, Seq: seq, CheckLen: d}
	for _, j := range h.peers {
		if j != h.id {
			h.emit(j, m)
		}
	}
}

// maybeReady casts this host's ready vote for (seq, d) if d just
// reached the echo quorum or the f+1 ready amplification threshold.
// Quorum checks run only for the digest whose count just changed, so no
// map iteration (and no iteration-order dependence) is ever needed.
func (h *Host) maybeReady(now time.Duration, seq seqset.Seq, d uint64, st *echoState) {
	if st.readySent {
		return
	}
	if len(st.echoes[d]) < h.echoQuorum() && len(st.readies[d]) < h.readyAmplify() {
		return
	}
	st.readySent = true
	h.recordReady(now, h.id, seq, d, st)
	h.broadcastMeta(MsgReady, seq, d)
}

// maybeDeliver delivers the pending payload for seq if its digest is d
// and d holds a ready quorum.
func (h *Host) maybeDeliver(now time.Duration, from HostID, seq seqset.Seq, d uint64, st *echoState) {
	if seq <= h.prunedTo || h.info.Contains(seq) {
		return
	}
	if !st.havePayload || st.digest != d {
		return
	}
	if len(st.readies[d]) < h.readyQuorum() {
		return
	}
	h.acceptCertified(now, from, seq, st)
}

// acceptCertified is the echo-mode counterpart of the §4.1 acceptance
// in handleData: the quorum-certified pending payload enters INFO and
// the store and is delivered. The payload was already forwarded when it
// became pending; post-delivery redistribution rides the normal gap
// fills.
func (h *Host) acceptCertified(now time.Duration, from HostID, seq seqset.Seq, st *echoState) {
	h.info.Add(seq)
	h.store[seq] = st.payload
	st.payload = nil
	h.env.Deliver(seq, h.store[seq])
	h.event(now, EvAccepted, from, seq)
}

// handleDataEcho is the EchoReady replacement for the acceptance half
// of handleData: the payload goes pending and is voted on instead of
// being delivered outright. Caller has already done learnHas and the
// duplicate check.
func (h *Host) handleDataEcho(now time.Duration, from HostID, m Message) {
	d := payloadDigest(m.Payload)
	st := h.echoSt(m.Seq)
	certified := len(st.readies[d]) >= h.readyQuorum()
	newMax := m.Seq > h.info.Max()
	// §4.1 with the quorum relaxation: a new-maximum payload is accepted
	// from the parent or on the strength of a ready quorum for its digest.
	if newMax && from != h.parent && !certified {
		h.event(now, EvRejected, from, m.Seq)
		if !m.GapFill {
			h.emit(from, Message{Kind: MsgDetach})
		}
		return
	}
	if st.havePayload && st.digest != d {
		// A different payload for a sequence number already pending:
		// direct evidence of equivocation. Adopt the replacement only
		// when a ready quorum vouches for it; otherwise first-come wins
		// and the conflict is just counted.
		h.equivocations++
		h.event(now, EvEquivocation, from, m.Seq)
		if !certified {
			return
		}
	}
	first := !st.havePayload
	if first || (certified && st.digest != d) {
		st.payload = append([]byte(nil), m.Payload...)
		st.digest = d
		st.havePayload = true
	}
	if !st.echoed {
		st.echoed = true
		h.recordEcho(now, h.id, m.Seq, st.digest, st)
		h.broadcastMeta(MsgEcho, m.Seq, st.digest)
	}
	if first {
		// Propagation is not quorum-gated — forward exactly as the plain
		// protocol would, so the tree latency story is unchanged.
		h.forwardData(from, m.Seq, st.payload, newMax && !m.GapFill)
	}
	h.maybeReady(now, m.Seq, st.digest, st)
	h.maybeDeliver(now, from, m.Seq, st.digest, st)
}

// forwardData relays a data payload: downward to all children for a
// normal new-maximum arrival, or as §4.4 gap fills to parent-graph
// neighbours that lack it.
func (h *Host) forwardData(from HostID, seq seqset.Seq, payload []byte, downward bool) {
	if downward {
		fwd := Message{Kind: MsgData, Seq: seq, Payload: payload}
		for _, c := range h.Children() {
			if c != from {
				h.sendMarking(c, fwd)
			}
		}
		return
	}
	fwd := Message{Kind: MsgData, Seq: seq, Payload: payload, GapFill: true}
	for _, nb := range h.neighbors() {
		if nb == from || h.maps[nb].Contains(seq) {
			continue
		}
		if !h.children[nb] && seq > h.maps[nb].Max() {
			continue
		}
		h.sendMarking(nb, fwd)
	}
}

func (h *Host) handleEcho(now time.Duration, from HostID, m Message) {
	if !h.params.EchoReady || m.Seq == 0 || m.Seq <= h.prunedTo {
		return
	}
	st := h.echoSt(m.Seq)
	h.recordEcho(now, from, m.Seq, m.CheckLen, st)
	if h.info.Contains(m.Seq) {
		// Already delivered: answer with our ready vote so a straggler
		// whose original vote burst was lost can still reach its quorum.
		h.emit(from, Message{Kind: MsgReady, Seq: m.Seq, CheckLen: st.digest})
		return
	}
	h.maybeReady(now, m.Seq, m.CheckLen, st)
	h.maybeDeliver(now, from, m.Seq, m.CheckLen, st)
}

func (h *Host) handleReady(now time.Duration, from HostID, m Message) {
	if !h.params.EchoReady || m.Seq == 0 || m.Seq <= h.prunedTo {
		return
	}
	st := h.echoSt(m.Seq)
	if !h.recordReady(now, from, m.Seq, m.CheckLen, st) {
		return
	}
	if h.info.Contains(m.Seq) {
		return
	}
	h.maybeReady(now, m.Seq, m.CheckLen, st)
	h.maybeDeliver(now, from, m.Seq, m.CheckLen, st)
}

// resendEchoMeta re-advertises this host's votes for every sequence
// number still pending, at the routine INFO cadence. Votes travel on
// the same best-effort network as everything else; without periodic
// re-advertisement a lossy burst could leave a quorum permanently one
// vote short.
func (h *Host) resendEchoMeta() {
	if len(h.echo) == 0 {
		return
	}
	pending := make([]seqset.Seq, 0, len(h.echo))
	for q := range h.echo {
		if q > h.prunedTo && !h.info.Contains(q) {
			pending = append(pending, q)
		}
	}
	slices.Sort(pending)
	for _, q := range pending {
		st := h.echo[q]
		if st.echoed {
			h.broadcastMeta(MsgEcho, q, st.echoFrom[h.id])
		}
		if st.readySent {
			h.broadcastMeta(MsgReady, q, st.readyFrom[h.id])
		}
	}
}

// pruneEchoStates drops voting state for pruned sequence numbers; they
// are globally held, so no straggler can still need the votes.
func (h *Host) pruneEchoStates() {
	for q := range h.echo {
		if q <= h.prunedTo {
			delete(h.echo, q)
		}
	}
}
