package core_test

import (
	"testing"

	"rbcast/internal/core"
	"rbcast/internal/seqset"
)

func piggyParams() core.Params {
	p := quietParams()
	p.Piggyback = true
	return p
}

func TestPiggybackBundlesAttachFill(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, piggyParams(), env)
	now := makeParent(t, h, env, 3)
	// Hold 1..5.
	for q := seqset.Seq(1); q <= 5; q++ {
		h.HandleMessage(now, 3, true, core.Message{Kind: core.MsgData, Seq: q, Payload: []byte{byte(q)}})
	}
	env.reset()
	// Host 5 attaches holding {1}: the accept plus fills for 2..5 must
	// arrive as ONE bundled packet.
	h.HandleMessage(now, 5, false, core.Message{
		Kind: core.MsgAttachReq, Info: seqset.FromSlice([]seqset.Seq{1}),
	})
	if len(env.sent) != 1 {
		t.Fatalf("sent %d packets, want 1 bundle: %v", len(env.sent), env.sent)
	}
	b := env.sent[0]
	if b.to != 5 || b.m.Kind != core.MsgBundle {
		t.Fatalf("packet = %+v, want bundle to 5", b)
	}
	if len(b.m.Parts) != 5 { // accept + 4 fills
		t.Fatalf("bundle has %d parts, want 5", len(b.m.Parts))
	}
	if b.m.Parts[0].Kind != core.MsgAttachAccept {
		t.Errorf("first part = %v, want attach-accept", b.m.Parts[0].Kind)
	}
	for i, part := range b.m.Parts[1:] {
		if part.Kind != core.MsgData || !part.GapFill || part.Seq != seqset.Seq(i+2) {
			t.Errorf("part %d = %+v, want gap-fill data seq %d", i+1, part, i+2)
		}
	}
}

func TestPiggybackSingleMessageNotWrapped(t *testing.T) {
	env := &fakeEnv{}
	h := newTestHost(t, 2, piggyParams(), env)
	// A lone corrective detach (rejecting new-max data from a non-parent)
	// must go out unwrapped.
	h.HandleMessage(0, 3, false, core.Message{Kind: core.MsgData, Seq: 1, Payload: []byte("x")})
	if len(env.sent) != 1 {
		t.Fatalf("sent %d packets, want 1", len(env.sent))
	}
	if env.sent[0].m.Kind != core.MsgDetach {
		t.Errorf("packet = %v, want bare detach", env.sent[0].m.Kind)
	}
}

func TestBundleReceived(t *testing.T) {
	// A receiver processes every part of an inbound bundle.
	env := &fakeEnv{}
	h := newTestHost(t, 2, quietParams(), env)
	now := makeParent(t, h, env, 3)
	env.reset()
	h.HandleMessage(now, 3, true, core.Message{
		Kind: core.MsgBundle,
		Parts: []core.Message{
			{Kind: core.MsgData, Seq: 1, Payload: []byte("a")},
			{Kind: core.MsgData, Seq: 2, Payload: []byte("b")},
			{Kind: core.MsgInfo, Info: seqset.FromRange(1, 10), Parent: core.Nil},
		},
	})
	if len(env.delivered) != 2 {
		t.Fatalf("delivered %v, want seqs 1 and 2", env.delivered)
	}
	if got := h.MapOf(3).Max(); got != 10 {
		t.Errorf("MAP[3] max = %d, want 10 (info part applied)", got)
	}
	// Nested bundles are ignored rather than recursed into.
	env.reset()
	h.HandleMessage(now, 3, true, core.Message{
		Kind: core.MsgBundle,
		Parts: []core.Message{
			{Kind: core.MsgBundle, Parts: []core.Message{{Kind: core.MsgData, Seq: 3}}},
		},
	})
	if len(env.delivered) != 0 {
		t.Error("nested bundle part was processed")
	}
}

func TestPiggybackEndToEndEquivalence(t *testing.T) {
	// The same stimulus must produce identical protocol state with and
	// without piggybacking — only the packaging differs.
	run := func(piggy bool) *core.Host {
		p := quietParams()
		p.Piggyback = piggy
		env := &fakeEnv{}
		h := newTestHost(t, 2, p, env)
		now := makeParent(t, h, env, 3)
		for q := seqset.Seq(1); q <= 8; q += 2 {
			h.HandleMessage(now, 3, true, core.Message{Kind: core.MsgData, Seq: q})
		}
		infoFrom(h, now, 4, false, 0, core.Nil)
		h.HandleMessage(now, 4, false, core.Message{Kind: core.MsgAttachReq})
		return h
	}
	a, b := run(false), run(true)
	if !a.Info().Equal(b.Info()) {
		t.Errorf("INFO differs: %v vs %v", a.Info(), b.Info())
	}
	if a.Parent() != b.Parent() {
		t.Errorf("parent differs: %d vs %d", a.Parent(), b.Parent())
	}
	ac, bc := a.Children(), b.Children()
	if len(ac) != len(bc) {
		t.Errorf("children differ: %v vs %v", ac, bc)
	}
}
