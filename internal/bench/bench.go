// Package bench defines the repository's perf-tracking benchmark cases
// once, so that `go test -bench` (via bench_test.go wrappers) and the
// cmd/rbbench JSON runner measure exactly the same code. Each case is an
// ordinary testing benchmark function; rbbench executes them with
// testing.Benchmark and records events/s, ns/op, allocs/op, and bytes/op
// into a BENCH_<date>.json snapshot (schema documented in README
// "Performance").
package bench

import (
	"path/filepath"
	"testing"
	"time"

	"rbcast"
	"rbcast/internal/analysis"
	"rbcast/internal/harness"
	"rbcast/internal/seqset"
	"rbcast/internal/sim"
	"rbcast/internal/topo"
	"rbcast/internal/wire"

	"rbcast/internal/core"
)

// Case is one named benchmark tracked across BENCH_*.json snapshots.
type Case struct {
	Name string
	F    func(b *testing.B)
}

// Cases returns the perf-tracking suite in a fixed order.
func Cases() []Case {
	return []Case{
		{"SimulatorThroughput", SimulatorThroughput},
		{"ShardScaling/1", ShardScaling(1)},
		{"ShardScaling/2", ShardScaling(2)},
		{"ShardScaling/4", ShardScaling(4)},
		{"ShardScaling/8", ShardScaling(8)},
		{"PublicSimulate", PublicSimulate},
		{"LiveFleetBroadcast", LiveFleetBroadcast},
		{"EngineTimerChurn", EngineTimerChurn},
		{"SeqsetDiff", SeqsetDiff},
		{"WireEncodeInfo", WireEncodeInfo},
		{"WireAppendEncodeInfo", WireAppendEncodeInfo},
		{"WireDecodeInfo", WireDecodeInfo},
		{"WireCodecKinds", WireCodecKinds},
		{"RBLintSuite", RBLintSuite},
		{"CallGraph", CallGraph},
	}
}

// SimulatorThroughput measures raw discrete-event throughput of a full
// protocol broadcast: simulated events per wall-clock second.
func SimulatorThroughput(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	var virtual time.Duration
	for i := 0; i < b.N; i++ {
		rt, err := harness.Prepare(harness.Scenario{
			Seed: 1,
			Build: func(eng sim.Loop) (*topo.Topology, error) {
				return topo.Clustered(eng, topo.ClusteredConfig{
					Clusters:        6,
					HostsPerCluster: 4,
					Shape:           topo.WANTree,
				})
			},
			Protocol:         harness.ProtocolTree,
			Messages:         30,
			MsgInterval:      150 * time.Millisecond,
			WarmUp:           3 * time.Second,
			StopWhenComplete: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := rt.Finish()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Complete {
			b.Fatalf("broadcast incomplete (%d/%d)", res.DeliveredCount, res.ExpectedCount)
		}
		events += rt.Engine.EventsRun()
		virtual += rt.Engine.Now()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(virtual.Seconds()/b.Elapsed().Seconds()/float64(b.N), "virtual-s/wall-s")
}

// ShardScaling measures the sharded parallel engine on a 512-host
// topology (64 clusters of 8) at the given worker count. The simulated
// trace is bit-identical at every shard count — only events per
// wall-clock second may change — so entries differ purely in execution
// parallelism. Compare the events/s metric across ShardScaling/1..8;
// the available speedup is bounded by GOMAXPROCS and by the epoch
// barrier's serial fraction (coordinator drain + global events).
func ShardScaling(shards int) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		var events uint64
		var virtual time.Duration
		for i := 0; i < b.N; i++ {
			rt, err := harness.Prepare(harness.Scenario{
				Seed:   1,
				Shards: shards,
				Build: func(eng sim.Loop) (*topo.Topology, error) {
					return topo.Clustered(eng, topo.ClusteredConfig{
						Clusters:        64,
						HostsPerCluster: 8,
						Shape:           topo.WANTree,
					})
				},
				Protocol:         harness.ProtocolTree,
				Messages:         5,
				MsgInterval:      200 * time.Millisecond,
				WarmUp:           3 * time.Second,
				StopWhenComplete: true,
			})
			if err != nil {
				b.Fatal(err)
			}
			res, err := rt.Finish()
			if err != nil {
				b.Fatal(err)
			}
			if !res.Complete {
				b.Fatalf("broadcast incomplete (%d/%d)", res.DeliveredCount, res.ExpectedCount)
			}
			events += rt.Engine.EventsRun()
			virtual += rt.Engine.Now()
		}
		b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
		b.ReportMetric(virtual.Seconds()/b.Elapsed().Seconds()/float64(b.N), "virtual-s/wall-s")
	}
}

// PublicSimulate measures the facade's end-to-end cost.
func PublicSimulate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := rbcast.Simulate(rbcast.SimulationConfig{
			Clusters:        3,
			HostsPerCluster: 3,
			Messages:        20,
			Seed:            1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Complete {
			b.Fatal("incomplete")
		}
	}
}

// LiveFleetBroadcast measures real-time end-to-end latency of a
// nine-host live fleet delivering a burst of ten messages.
func LiveFleetBroadcast(b *testing.B) {
	b.ReportAllocs()
	hosts := []rbcast.HostID{1, 2, 3, 4, 5, 6, 7, 8, 9}
	fleet, err := rbcast.StartFleet(rbcast.FleetConfig{
		Hosts:    hosts,
		Source:   1,
		Clusters: [][]rbcast.HostID{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}},
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer fleet.Stop()
	b.ResetTimer()
	var total rbcast.Seq
	for i := 0; i < b.N; i++ {
		for j := 0; j < 10; j++ {
			seq, err := fleet.Broadcast([]byte("bench"))
			if err != nil {
				b.Fatal(err)
			}
			total = seq
		}
		if !fleet.WaitDelivered(total, 30*time.Second) {
			b.Fatal("burst not delivered")
		}
	}
}

// EngineTimerChurn measures the event queue under backoff-style timer
// churn: a burst of scheduled events, most of which are canceled before
// they fire — the pattern long recovery soaks produce.
func EngineTimerChurn(b *testing.B) {
	b.ReportAllocs()
	const burst = 4096
	timers := make([]sim.Timer, 0, burst)
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine(1)
		timers = timers[:0]
		for j := 0; j < burst; j++ {
			timers = append(timers, eng.Schedule(time.Duration(j)*time.Microsecond, func() {}))
		}
		for j, t := range timers {
			if j%8 != 0 {
				t.Cancel()
			}
		}
		if err := eng.RunUntilIdle(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)*burst/b.Elapsed().Seconds(), "timers/s")
}

// benchSets builds a fragmented INFO set pair shaped like a lossy run:
// `have` holds most of 1..600 with periodic holes; `their` trails behind.
func benchSets() (have, their seqset.Set) {
	for q := seqset.Seq(1); q <= 600; q++ {
		if q%37 != 0 {
			have.Add(q)
		}
		if q <= 480 && q%23 != 0 {
			their.Add(q)
		}
	}
	return have, their
}

// SeqsetDiff measures the set difference underlying every gap-fill
// decision and every delta INFO exchange.
func SeqsetDiff(b *testing.B) {
	b.ReportAllocs()
	have, their := benchSets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := have.Diff(their)
		if d.Empty() {
			b.Fatal("empty diff")
		}
	}
}

// infoFrame is a typical periodic INFO frame: a mostly-contiguous set
// with a few holes, as a steady-state host advertises.
func infoFrame() wire.Frame {
	info := seqset.FromRange(1, 120)
	info.AddRange(125, 180)
	info.AddRange(190, 200)
	return wire.Frame{From: 3, Message: core.Message{
		Kind:   core.MsgInfo,
		Info:   info,
		Parent: 2,
	}}
}

// WireEncodeInfo measures encoding of a typical INFO frame.
func WireEncodeInfo(b *testing.B) {
	b.ReportAllocs()
	f := infoFrame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Encode(f); err != nil {
			b.Fatal(err)
		}
	}
}

// WireAppendEncodeInfo measures the hot transport path: encoding a
// typical INFO frame into a reused buffer. Expected 0 allocs/op.
func WireAppendEncodeInfo(b *testing.B) {
	b.ReportAllocs()
	f := infoFrame()
	buf := make([]byte, 0, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, err := wire.AppendEncode(buf[:0], f)
		if err != nil {
			b.Fatal(err)
		}
		buf = out[:0]
	}
}

// WireDecodeInfo measures decoding of a typical INFO frame.
func WireDecodeInfo(b *testing.B) {
	b.ReportAllocs()
	data, err := wire.Encode(infoFrame())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := wire.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// kindFrames is one representative frame per message kind, so the codec
// round-trip cost of the whole kind space is tracked (and wirelint's
// bench-coverage check sees every kind exercised here).
func kindFrames() []wire.Frame {
	info := seqset.FromRange(1, 64)
	info.AddRange(70, 90)
	return []wire.Frame{
		{From: 3, Message: core.Message{Kind: core.MsgData, Seq: 91, Payload: make([]byte, 32)}},
		{From: 3, Message: core.Message{Kind: core.MsgInfo, Info: info, Parent: 2}},
		{From: 3, Message: core.Message{Kind: core.MsgAttachReq, Info: info}},
		{From: 2, Message: core.Message{Kind: core.MsgAttachAccept, Info: info}},
		{From: 2, Message: core.Message{Kind: core.MsgAttachReject}},
		{From: 3, Message: core.Message{Kind: core.MsgDetach}},
		{From: 3, Message: core.Message{Kind: core.MsgBundle, Parts: []core.Message{
			{Kind: core.MsgData, Seq: 91, Payload: make([]byte, 32), GapFill: true},
			{Kind: core.MsgInfo, Info: info, Parent: 2},
		}}},
		{From: 3, Message: core.Message{Kind: core.MsgInfoDelta, Info: seqset.FromRange(85, 90),
			Seq: 90, CheckLen: uint64(info.Len()), Parent: 2}},
		{From: 3, Message: core.Message{Kind: core.MsgEcho, Seq: 91, CheckLen: 0x9e3779b97f4a7c15}},
		{From: 3, Message: core.Message{Kind: core.MsgReady, Seq: 91, CheckLen: 0x9e3779b97f4a7c15}},
		{From: 3, Message: core.Message{Kind: core.MsgSyncReq, Seq: 65, Info: seqset.FromRange(65, 90)}},
		{From: 2, Message: core.Message{Kind: core.MsgSyncResp, Seq: 65, Parts: []core.Message{
			{Kind: core.MsgData, Seq: 65, Payload: make([]byte, 32), GapFill: true},
			{Kind: core.MsgData, Seq: 66, Payload: make([]byte, 32), GapFill: true},
		}, Info: seqset.FromRange(67, 70), CheckLen: 64}},
		{From: 3, Message: core.Message{Kind: core.MsgSnapReq, Seq: 4096, CheckLen: 64}},
		{From: 2, Message: core.Message{Kind: core.MsgSnapChunk, Seq: 4096,
			Payload: make([]byte, 256), CheckLen: 8192, Info: seqset.FromRange(1, 64)}},
	}
}

// WireCodecKinds measures an encode+decode round trip of one frame of
// every message kind.
func WireCodecKinds(b *testing.B) {
	b.ReportAllocs()
	frames := kindFrames()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, f := range frames {
			data, err := wire.Encode(f)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := wire.Decode(data); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.N)*float64(len(frames))/b.Elapsed().Seconds(), "frames/s")
}

// RBLintSuite measures a full run of the static analysis suite — all
// twelve analyzers, CFG and call-graph construction, lock summaries,
// taint dataflow, and the abstract-interpretation layer (interval
// inference, effect summaries, and the quorum prover) — over the
// protocol state machine package and the simulated network package.
// Both are in scope: core exercises quorumlint's relational proofs,
// netsim exercises lanelint's whole-program lane-provenance walk.
// Loading and type-checking happen once outside the timer; the loop
// measures pure analysis cost.
func RBLintSuite(b *testing.B) {
	b.ReportAllocs()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		b.Fatal(err)
	}
	core, err := loader.Load(filepath.Join(loader.ModRoot, "internal", "core"), "rbcast/internal/core")
	if err != nil {
		b.Fatal(err)
	}
	netsim, err := loader.Load(filepath.Join(loader.ModRoot, "internal", "netsim"), "rbcast/internal/netsim")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pkg := range []*analysis.Package{core, netsim} {
			if _, err := analysis.RunPackage(loader, pkg, analysis.Analyzers()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// CallGraph measures whole-program call-graph construction — node
// discovery, static/go/defer edges, address-taken collection, and
// CHA-style dynamic resolution — over every package in the module.
// Loading and type-checking happen once outside the timer; the loop
// measures pure graph-building cost, the fixed overhead every
// whole-program analyzer pays per rblint run.
func CallGraph(b *testing.B) {
	b.ReportAllocs()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		b.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns("./...")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := analysis.NewProgram(loader.Fset, pkgs)
		if p.Graph == nil || len(p.Graph.Nodes) == 0 {
			b.Fatal("empty call graph")
		}
	}
}
