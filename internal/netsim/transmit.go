package netsim

import (
	"fmt"
	"time"
)

// Lane discipline: every transmission executes on the lane owning the
// host/server it currently touches. A host's protocol code runs as lane
// events on its own lane (or from a parked context), so Send derives the
// executing lane from the sender. Host links never cross lanes (a host
// shares its server's lane); server-to-server hops may, in which case
// the hop's delay — at least the shard plan's lookahead for any
// cross-lane link — rides through sim.Loop.ScheduleCross into the
// destination lane's next epoch.

// Send hands a message from host `from` to its server for delivery to
// host `to`. This is the only communication service hosts get: a single
// destination per call, exactly as the paper's nonprogrammable-server
// model dictates. Delivery is best-effort: the message can be lost,
// duplicated, reordered, or silently dropped by link failures, and no
// failure is ever reported to the sender.
func (n *Network) Send(from, to HostID, payload any) error {
	src, ok := n.hosts[from]
	if !ok {
		return fmt.Errorf("netsim: unknown sender host %d", from)
	}
	if _, ok := n.hosts[to]; !ok {
		return fmt.Errorf("netsim: unknown destination host %d", to)
	}
	if from == to {
		return fmt.Errorf("netsim: host %d sending to itself", from)
	}
	lane := n.laneOfHost(from)
	if src.transmit != nil {
		// The transmit seam: a hook (an adversary controller) decides what
		// actually hits the wire. The correct-host code above this call
		// observes a successful Send either way — exactly the visibility a
		// hostile network interface would give it.
		for _, out := range src.transmit(to, payload) {
			if _, ok := n.hosts[out.To]; !ok || out.To == from {
				// A hook emitting an unreachable or self destination is a
				// behavior bug, not a network condition; drop silently like
				// any other undeliverable traffic.
				n.statsLanes[lane].DroppedNoRoute++
				continue
			}
			n.transmitOne(lane, src, out.To, out.Payload, out.ForceCostBit)
		}
		return nil
	}
	n.transmitOne(lane, src, to, payload, false)
	return nil
}

// transmitOne pushes one concrete transmission into the network: stats,
// observer hooks, then the sender's access link toward its server.
func (n *Network) transmitOne(lane int, src *hostPort, to HostID, payload any, forceCost bool) {
	env := Envelope{From: src.id, To: to, CostBit: forceCost, Payload: payload, SentAt: n.eng.NowOf(lane)}
	st := n.statsLanes[lane]
	st.HostSends++
	inter := false
	clusters := n.trueClustersOf(lane)
	if clusters[src.id] != clusters[to] {
		inter = true
		st.InterClusterSends++
	}
	if n.OnSend != nil {
		n.OnSend(lane, env, inter)
	}
	// First hop: the sender's access link up to its server.
	n.traverseHostLink(lane, src, env, func(env Envelope) {
		n.arriveAtServer(lane, src.server, env)
	})
}

// traverseHostLink models one traversal of a host access link (in either
// direction), applying its delay, loss, and duplication, then invoking
// next with the (possibly cost-marked) envelope. Host links never cross
// lanes: the executing lane owns both the host and its server.
func (n *Network) traverseHostLink(lane int, hp *hostPort, env Envelope, next func(Envelope)) {
	st := n.statsLanes[lane]
	if !hp.up {
		st.DroppedLinkDown++
		return
	}
	st.LinkTransmissions[hp.cfg.Class]++
	st.HostLinkTransmissions[hp.id]++
	if n.OnHostLinkTransmit != nil {
		n.OnHostLinkTransmit(lane, hp.id, env)
	}
	if hp.cfg.Class == Expensive {
		env.CostBit = true
	}
	env.Hops++
	n.deliverAcross(lane, lane, hp.cfg, env, next)
}

// arriveAtServer is the per-hop forwarding decision: the server consults
// its current routing table (adaptive: recomputed on topology change) and
// forwards toward the destination's server, or up the destination's host
// link if it is local. lane is the executing lane, which owns server at.
func (n *Network) arriveAtServer(lane int, at ServerID, env Envelope) {
	// Adaptive routing can loop transiently while tables converge after a
	// failure; a hop budget bounds such messages' lifetime, and the drop
	// is silent, as all drops are in this model.
	if env.Hops > 4+2*len(n.servers) {
		n.statsLanes[lane].DroppedNoRoute++
		return
	}
	dst := n.hosts[env.To]
	if at == dst.server {
		n.traverseHostLink(lane, dst, env, func(env Envelope) {
			n.statsLanes[lane].Delivered++
			if dst.handler != nil {
				dst.handler(n.eng.NowOf(lane), env)
			}
		})
		return
	}
	nextHop, ok := n.routesFrom(lane, at)[dst.server]
	if !ok {
		n.statsLanes[lane].DroppedNoRoute++
		return
	}
	l := n.upLinkBetween(at, nextHop)
	if l == nil {
		// Routing table says nextHop but the link vanished between the
		// route computation and this traversal; with lazy per-version
		// recomputation this cannot normally happen, but guard anyway.
		n.statsLanes[lane].DroppedLinkDown++
		return
	}
	st := n.statsLanes[lane]
	st.LinkTransmissions[l.cfg.Class]++
	st.PerLink[l.id]++
	if n.OnLinkTransmit != nil {
		n.OnLinkTransmit(lane, l.id, l.cfg.Class, env)
	}
	if l.cfg.Class == Expensive {
		env.CostBit = true
	}
	env.Hops++
	nextLane := n.laneOfServer(nextHop)
	n.deliverAcross(lane, nextLane, l.cfg, env, func(env Envelope) {
		n.arriveAtServer(nextLane, nextHop, env)
	})
}

// upLinkBetween returns the best up link joining two servers (cheapest
// first — parallel links can differ in class after a repair adds a cheap
// path next to an old expensive one — then lowest ID), or nil.
func (n *Network) upLinkBetween(a, b ServerID) *link {
	var best *link
	for _, l := range n.servers[a].links {
		if !l.up || l.other(a) != b {
			continue
		}
		if best == nil || l.weight() < best.weight() ||
			(l.weight() == best.weight() && l.id < best.id) {
			best = l
		}
	}
	return best
}

// deliverAcross applies a link's loss, duplication, and delay+jitter,
// scheduling next for each surviving copy. Randomness draws from the
// executing (sending) lane's stream, so the draw sequence depends only
// on that lane's deterministic event order; the continuation runs on
// toLane (jitter is additive, so a cross-lane hop's delay never falls
// below the link's base Delay — the shard plan's lookahead bound).
func (n *Network) deliverAcross(fromLane, toLane int, cfg LinkConfig, env Envelope, next func(Envelope)) {
	rng := n.eng.RandOf(fromLane)
	st := n.statsLanes[fromLane]
	if cfg.LossProb > 0 && rng.Float64() < cfg.LossProb {
		st.Lost++
		return
	}
	copies := 1
	if cfg.DupProb > 0 && rng.Float64() < cfg.DupProb {
		copies = 2
		st.Duplicated++
	}
	for i := 0; i < copies; i++ {
		d := cfg.Delay
		if cfg.Jitter > 0 {
			d += time.Duration(rng.Int63n(int64(cfg.Jitter)))
		}
		env := env
		n.eng.ScheduleCross(fromLane, toLane, d, func() { next(env) })
	}
}
