package netsim

import (
	"fmt"
	"time"
)

// Send hands a message from host `from` to its server for delivery to
// host `to`. This is the only communication service hosts get: a single
// destination per call, exactly as the paper's nonprogrammable-server
// model dictates. Delivery is best-effort: the message can be lost,
// duplicated, reordered, or silently dropped by link failures, and no
// failure is ever reported to the sender.
func (n *Network) Send(from, to HostID, payload any) error {
	src, ok := n.hosts[from]
	if !ok {
		return fmt.Errorf("netsim: unknown sender host %d", from)
	}
	if _, ok := n.hosts[to]; !ok {
		return fmt.Errorf("netsim: unknown destination host %d", to)
	}
	if from == to {
		return fmt.Errorf("netsim: host %d sending to itself", from)
	}
	if src.transmit != nil {
		// The transmit seam: a hook (an adversary controller) decides what
		// actually hits the wire. The correct-host code above this call
		// observes a successful Send either way — exactly the visibility a
		// hostile network interface would give it.
		for _, out := range src.transmit(to, payload) {
			if _, ok := n.hosts[out.To]; !ok || out.To == from {
				// A hook emitting an unreachable or self destination is a
				// behavior bug, not a network condition; drop silently like
				// any other undeliverable traffic.
				n.stats.DroppedNoRoute++
				continue
			}
			n.transmitOne(src, out.To, out.Payload, out.ForceCostBit)
		}
		return nil
	}
	n.transmitOne(src, to, payload, false)
	return nil
}

// transmitOne pushes one concrete transmission into the network: stats,
// observer hooks, then the sender's access link toward its server.
func (n *Network) transmitOne(src *hostPort, to HostID, payload any, forceCost bool) {
	env := Envelope{From: src.id, To: to, CostBit: forceCost, Payload: payload, SentAt: n.eng.Now()}
	n.stats.HostSends++
	inter := false
	clusters := n.TrueClusters()
	if clusters[src.id] != clusters[to] {
		inter = true
		n.stats.InterClusterSends++
	}
	if n.OnSend != nil {
		n.OnSend(env, inter)
	}
	// First hop: the sender's access link up to its server.
	n.traverseHostLink(src, env, func(env Envelope) {
		n.arriveAtServer(src.server, env)
	})
}

// traverseHostLink models one traversal of a host access link (in either
// direction), applying its delay, loss, and duplication, then invoking
// next with the (possibly cost-marked) envelope.
func (n *Network) traverseHostLink(hp *hostPort, env Envelope, next func(Envelope)) {
	if !hp.up {
		n.stats.DroppedLinkDown++
		return
	}
	n.stats.LinkTransmissions[hp.cfg.Class]++
	n.stats.HostLinkTransmissions[hp.id]++
	if n.OnHostLinkTransmit != nil {
		n.OnHostLinkTransmit(hp.id, env)
	}
	if hp.cfg.Class == Expensive {
		env.CostBit = true
	}
	env.Hops++
	n.deliverAcross(hp.cfg, env, next)
}

// arriveAtServer is the per-hop forwarding decision: the server consults
// its current routing table (adaptive: recomputed on topology change) and
// forwards toward the destination's server, or up the destination's host
// link if it is local.
func (n *Network) arriveAtServer(at ServerID, env Envelope) {
	// Adaptive routing can loop transiently while tables converge after a
	// failure; a hop budget bounds such messages' lifetime, and the drop
	// is silent, as all drops are in this model.
	if env.Hops > 4+2*len(n.servers) {
		n.stats.DroppedNoRoute++
		return
	}
	dst := n.hosts[env.To]
	if at == dst.server {
		n.traverseHostLink(dst, env, func(env Envelope) {
			n.stats.Delivered++
			if dst.handler != nil {
				dst.handler(n.eng.Now(), env)
			}
		})
		return
	}
	nextHop, ok := n.routesFrom(at)[dst.server]
	if !ok {
		n.stats.DroppedNoRoute++
		return
	}
	l := n.upLinkBetween(at, nextHop)
	if l == nil {
		// Routing table says nextHop but the link vanished between the
		// route computation and this traversal; with lazy per-version
		// recomputation this cannot normally happen, but guard anyway.
		n.stats.DroppedLinkDown++
		return
	}
	n.stats.LinkTransmissions[l.cfg.Class]++
	n.stats.PerLink[l.id]++
	if n.OnLinkTransmit != nil {
		n.OnLinkTransmit(l.id, l.cfg.Class, env)
	}
	if l.cfg.Class == Expensive {
		env.CostBit = true
	}
	env.Hops++
	n.deliverAcross(l.cfg, env, func(env Envelope) {
		n.arriveAtServer(nextHop, env)
	})
}

// upLinkBetween returns the best up link joining two servers (cheapest
// first — parallel links can differ in class after a repair adds a cheap
// path next to an old expensive one — then lowest ID), or nil.
func (n *Network) upLinkBetween(a, b ServerID) *link {
	var best *link
	for _, l := range n.servers[a].links {
		if !l.up || l.other(a) != b {
			continue
		}
		if best == nil || l.weight() < best.weight() ||
			(l.weight() == best.weight() && l.id < best.id) {
			best = l
		}
	}
	return best
}

// deliverAcross applies a link's loss, duplication, and delay+jitter,
// scheduling next for each surviving copy.
func (n *Network) deliverAcross(cfg LinkConfig, env Envelope, next func(Envelope)) {
	rng := n.eng.Rand()
	if cfg.LossProb > 0 && rng.Float64() < cfg.LossProb {
		n.stats.Lost++
		return
	}
	copies := 1
	if cfg.DupProb > 0 && rng.Float64() < cfg.DupProb {
		copies = 2
		n.stats.Duplicated++
	}
	for i := 0; i < copies; i++ {
		d := cfg.Delay
		if cfg.Jitter > 0 {
			d += time.Duration(rng.Int63n(int64(cfg.Jitter)))
		}
		env := env
		n.eng.Schedule(d, func() { next(env) })
	}
}
