package netsim

import (
	"container/heap"
	"sort"
)

// Adaptive shortest-path routing. Each server forwards hop by hop using
// the current topology: routes are recomputed lazily whenever the
// topology version changes, which models the ARPANET-style adaptive
// routing the paper's communication-transitivity assumption rests on.
// Cheap links weigh 1, expensive links weigh 1000, so routing crosses an
// expensive link only when no cheap path exists — matching the paper's
// cluster model, where intra-cluster communication is cheap.

type spItem struct {
	server ServerID
	dist   int
}

type spQueue []spItem

func (q spQueue) Len() int { return len(q) }
func (q spQueue) Less(i, j int) bool {
	if q[i].dist != q[j].dist {
		return q[i].dist < q[j].dist
	}
	return q[i].server < q[j].server // deterministic tie-break
}
func (q spQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *spQueue) Push(x any)   { *q = append(*q, x.(spItem)) }
func (q *spQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// routesFrom returns the next-hop table from src over currently-up links:
// routes[dst] is the neighbour to forward to. Absent entries mean
// unreachable. Tables are cached per topology version, per lane: each
// lane lazily recomputes its own view after a topology change, so
// concurrent lanes never share a mutable cache.
func (n *Network) routesFrom(lane int, src ServerID) map[ServerID]ServerID {
	c := &n.caches[lane]
	if c.routeVer != n.version {
		c.routeCache = make(map[ServerID]map[ServerID]ServerID)
		c.routeVer = n.version
	}
	if t, ok := c.routeCache[src]; ok {
		return t
	}
	t := n.dijkstra(src)
	c.routeCache[src] = t
	return t
}

func (n *Network) dijkstra(src ServerID) map[ServerID]ServerID {
	dist := map[ServerID]int{src: 0}
	// firstHop[s] is the neighbour of src on the chosen shortest path to s.
	firstHop := make(map[ServerID]ServerID)
	done := make(map[ServerID]bool)
	q := &spQueue{{server: src, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(spItem)
		if done[it.server] {
			continue
		}
		done[it.server] = true
		cur := n.servers[it.server]
		// Deterministic neighbour order: links sorted by ID.
		links := make([]*link, len(cur.links))
		copy(links, cur.links)
		sort.Slice(links, func(i, j int) bool { return links[i].id < links[j].id })
		for _, l := range links {
			if !l.up {
				continue
			}
			nb := l.other(it.server)
			nd := it.dist + l.weight()
			if d, seen := dist[nb]; !seen || nd < d {
				dist[nb] = nd
				if it.server == src {
					firstHop[nb] = nb
				} else {
					firstHop[nb] = firstHop[it.server]
				}
				heap.Push(q, spItem{server: nb, dist: nd})
			}
		}
	}
	return firstHop
}

// PathExists reports whether a route currently exists between the servers
// of two hosts (and both host links are up). Callable from parked
// contexts only; lane events (e.g. OnSend observers) must use
// PathExistsOf with their executing lane.
func (n *Network) PathExists(a, b HostID) bool {
	return n.PathExistsOf(n.globalLane(), a, b)
}

// PathExistsOf is PathExists evaluated against the given lane's private
// route cache, making it legal from that lane's events.
func (n *Network) PathExistsOf(lane int, a, b HostID) bool {
	ha, ok := n.hosts[a]
	if !ok || !ha.up {
		return false
	}
	hb, ok := n.hosts[b]
	if !ok || !hb.up {
		return false
	}
	if ha.server == hb.server {
		return true
	}
	_, ok = n.routesFrom(lane, ha.server)[hb.server]
	return ok
}

// TrueClusters returns the ground-truth clustering of hosts: connected
// components of the up-cheap-link server graph, restricted to hosts whose
// (cheap) access link is up. Hosts with a down or expensive access link,
// or unreachable cheaply, form singleton clusters. Cluster IDs are
// arbitrary but stable for a given topology version. This is simulator
// ground truth used for generation and metrics only — protocol hosts
// never see it.
//
// Callable from parked contexts only; lane events use trueClustersOf
// via the transmit path.
func (n *Network) TrueClusters() map[HostID]int {
	return n.trueClustersOf(n.globalLane())
}

// trueClustersOf returns the clustering memoized in lane's private
// cache slot.
func (n *Network) trueClustersOf(lane int) map[HostID]int {
	c := &n.caches[lane]
	if c.clusterVer == n.version && c.clusterMemo != nil {
		return c.clusterMemo
	}
	// Union-find over servers via up cheap links.
	parent := make(map[ServerID]ServerID, len(n.servers))
	var find func(ServerID) ServerID
	find = func(s ServerID) ServerID {
		for parent[s] != s {
			parent[s] = parent[parent[s]]
			s = parent[s]
		}
		return s
	}
	for id := range n.servers {
		parent[id] = id
	}
	for _, l := range n.sortedLinks() {
		if l.up && l.cfg.Class == Cheap {
			ra, rb := find(l.a), find(l.b)
			if ra != rb {
				parent[ra] = rb
			}
		}
	}
	// Assign dense cluster numbers by ascending root server ID.
	rootNum := make(map[ServerID]int)
	next := 1
	clusters := make(map[HostID]int, len(n.hosts))
	singles := next + len(n.servers) // singleton IDs start above component IDs
	for _, h := range n.Hosts() {
		hp := n.hosts[h]
		if !hp.up || hp.cfg.Class != Cheap {
			clusters[h] = singles
			singles++
			continue
		}
		root := find(hp.server)
		num, ok := rootNum[root]
		if !ok {
			num = next
			next++
			rootNum[root] = num
		}
		clusters[h] = num
	}
	c.clusterMemo = clusters
	c.clusterVer = n.version
	return clusters
}

// ClusterCount returns the number of distinct true clusters that contain
// at least one host.
func (n *Network) ClusterCount() int {
	seen := make(map[int]bool)
	for _, c := range n.TrueClusters() {
		seen[c] = true
	}
	return len(seen)
}
