package netsim

import (
	"testing"
	"time"

	"rbcast/internal/sim"
)

// lineNet builds h1 - s1 - s2 - s3 - h2 with configurable middle links.
func lineNet(t *testing.T, mid LinkConfig) (*sim.Engine, *Network, []ServerID, []LinkID) {
	t.Helper()
	eng := sim.NewEngine(1)
	n := New(eng)
	s1, s2, s3 := n.AddServer(), n.AddServer(), n.AddServer()
	l1, err := n.AddLink(s1, s2, mid)
	if err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	l2, err := n.AddLink(s2, s3, mid)
	if err != nil {
		t.Fatalf("AddLink: %v", err)
	}
	if err := n.AttachHost(1, s1, LinkConfig{Jitter: 0}); err != nil {
		t.Fatalf("AttachHost: %v", err)
	}
	if err := n.AttachHost(2, s3, LinkConfig{Jitter: 0}); err != nil {
		t.Fatalf("AttachHost: %v", err)
	}
	return eng, n, []ServerID{s1, s2, s3}, []LinkID{l1, l2}
}

func collect(t *testing.T, n *Network, h HostID) *[]Envelope {
	t.Helper()
	var got []Envelope
	if err := n.Handle(h, func(_ time.Duration, env Envelope) {
		got = append(got, env)
	}); err != nil {
		t.Fatalf("Handle: %v", err)
	}
	return &got
}

func TestDeliveryBasic(t *testing.T) {
	eng, n, _, _ := lineNet(t, LinkConfig{Jitter: 0})
	got := collect(t, n, 2)
	if err := n.Send(1, 2, "hello"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(*got) != 1 {
		t.Fatalf("delivered %d messages, want 1", len(*got))
	}
	env := (*got)[0]
	if env.Payload != "hello" || env.From != 1 || env.To != 2 {
		t.Errorf("envelope = %+v", env)
	}
	if env.CostBit {
		t.Error("cost bit set on all-cheap path")
	}
	if env.Hops != 4 { // host link, s1-s2, s2-s3, host link
		t.Errorf("hops = %d, want 4", env.Hops)
	}
	if n.Stats().Delivered != 1 || n.Stats().HostSends != 1 {
		t.Errorf("stats = %+v", n.Stats())
	}
}

func TestCostBitOnExpensivePath(t *testing.T) {
	eng, n, _, _ := lineNet(t, LinkConfig{Class: Expensive, Jitter: 0})
	got := collect(t, n, 2)
	if err := n.Send(1, 2, "x"); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(*got) != 1 {
		t.Fatalf("delivered %d, want 1", len(*got))
	}
	if !(*got)[0].CostBit {
		t.Error("cost bit not set despite expensive links on path")
	}
}

func TestRoutingPrefersCheapPath(t *testing.T) {
	// Square: s1-s2 cheap-cheap via s4 (s1-s4, s4-s2 cheap), and a direct
	// expensive s1-s2 link. Routing must take the two-hop cheap path.
	eng := sim.NewEngine(1)
	n := New(eng)
	s1, s2, s4 := n.AddServer(), n.AddServer(), n.AddServer()
	exp, err := n.AddLink(s1, s2, LinkConfig{Class: Expensive, Jitter: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddLink(s1, s4, LinkConfig{Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddLink(s4, s2, LinkConfig{Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(1, s1, LinkConfig{Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(2, s2, LinkConfig{Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	got := collect(t, n, 2)
	if err := n.Send(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("delivered %d, want 1", len(*got))
	}
	if (*got)[0].CostBit {
		t.Error("message took expensive link despite cheap path")
	}
	if n.Stats().PerLink[exp] != 0 {
		t.Errorf("expensive link used %d times, want 0", n.Stats().PerLink[exp])
	}

	// Cut the cheap path: routing must adapt to the expensive link.
	if err := n.SetLinkUp(n.Links()[1], false); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(1, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 2 {
		t.Fatalf("delivered %d after reroute, want 2", len(*got))
	}
	if !(*got)[1].CostBit {
		t.Error("rerouted message should carry cost bit")
	}
}

func TestLinkDownDropsSilently(t *testing.T) {
	eng, n, _, links := lineNet(t, LinkConfig{Jitter: 0})
	got := collect(t, n, 2)
	if err := n.SetLinkUp(links[1], false); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(1, 2, "x"); err != nil {
		t.Fatalf("Send returned error %v; drops must be silent", err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 0 {
		t.Errorf("delivered %d across a partition, want 0", len(*got))
	}
	if n.Stats().DroppedNoRoute == 0 {
		t.Error("no-route drop not counted")
	}
	// Repair and retry.
	if err := n.SetLinkUp(links[1], true); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(1, 2, "y"); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Errorf("delivered %d after repair, want 1", len(*got))
	}
}

func TestHostLinkDownSimulatesCrash(t *testing.T) {
	eng, n, _, _ := lineNet(t, LinkConfig{Jitter: 0})
	got := collect(t, n, 2)
	if err := n.SetHostLinkUp(2, false); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(1, 2, "x"); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 0 {
		t.Error("delivered to crashed host")
	}
	// The crashed host cannot send either.
	if err := n.SetHostLinkUp(1, false); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(1, 2, "y"); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if n.Stats().Delivered != 0 {
		t.Error("crashed host managed to send")
	}
}

func TestLoss(t *testing.T) {
	eng := sim.NewEngine(7)
	n := New(eng)
	s1, s2 := n.AddServer(), n.AddServer()
	if _, err := n.AddLink(s1, s2, LinkConfig{LossProb: 0.5, Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(1, s1, LinkConfig{Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(2, s2, LinkConfig{Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	got := collect(t, n, 2)
	const total = 1000
	for i := 0; i < total; i++ {
		if err := n.Send(1, 2, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(*got) == 0 || len(*got) == total {
		t.Errorf("delivered %d of %d with 50%% loss; want strictly between", len(*got), total)
	}
	if int(n.Stats().Lost)+len(*got) != total {
		t.Errorf("lost(%d) + delivered(%d) != %d", n.Stats().Lost, len(*got), total)
	}
	// Roughly half should arrive (generous bounds).
	if len(*got) < total/4 || len(*got) > 3*total/4 {
		t.Errorf("delivered %d of %d, want ≈ half", len(*got), total)
	}
}

func TestDuplication(t *testing.T) {
	eng := sim.NewEngine(7)
	n := New(eng)
	s1, s2 := n.AddServer(), n.AddServer()
	if _, err := n.AddLink(s1, s2, LinkConfig{DupProb: 1, Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(1, s1, LinkConfig{Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(2, s2, LinkConfig{Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	got := collect(t, n, 2)
	if err := n.Send(1, 2, "x"); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 2 {
		t.Errorf("delivered %d copies with DupProb=1 on one link, want 2", len(*got))
	}
	if n.Stats().Duplicated != 1 {
		t.Errorf("Duplicated = %d, want 1", n.Stats().Duplicated)
	}
}

func TestReorderingViaJitter(t *testing.T) {
	eng := sim.NewEngine(3)
	n := New(eng)
	s1, s2 := n.AddServer(), n.AddServer()
	if _, err := n.AddLink(s1, s2, LinkConfig{Delay: time.Millisecond, Jitter: 10 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(1, s1, LinkConfig{Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(2, s2, LinkConfig{Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	got := collect(t, n, 2)
	for i := 0; i < 50; i++ {
		if err := n.Send(1, 2, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 50 {
		t.Fatalf("delivered %d, want 50", len(*got))
	}
	inOrder := true
	for i, env := range *got {
		if env.Payload.(int) != i {
			inOrder = false
		}
	}
	if inOrder {
		t.Error("50 jittered messages arrived in exact order; reordering expected")
	}
}

func TestTrueClusters(t *testing.T) {
	// Two cheap islands joined by an expensive link.
	eng := sim.NewEngine(1)
	n := New(eng)
	s1, s2, s3, s4 := n.AddServer(), n.AddServer(), n.AddServer(), n.AddServer()
	if _, err := n.AddLink(s1, s2, LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddLink(s3, s4, LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	wan, err := n.AddLink(s2, s3, LinkConfig{Class: Expensive})
	if err != nil {
		t.Fatal(err)
	}
	for h, s := range map[HostID]ServerID{1: s1, 2: s2, 3: s3, 4: s4} {
		if err := n.AttachHost(h, s, LinkConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	c := n.TrueClusters()
	if c[1] != c[2] || c[3] != c[4] {
		t.Errorf("intra-island hosts in different clusters: %v", c)
	}
	if c[1] == c[3] {
		t.Errorf("islands share a cluster despite expensive-only path: %v", c)
	}
	if got := n.ClusterCount(); got != 2 {
		t.Errorf("ClusterCount = %d, want 2", got)
	}

	// Upgrading the WAN link to cheap merges the clusters.
	if err := n.SetLinkUp(wan, false); err != nil {
		t.Fatal(err)
	}
	if _, err := n.AddLink(s2, s3, LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	c = n.TrueClusters()
	if c[1] != c[4] {
		t.Errorf("cheap repair did not merge clusters: %v", c)
	}

	// A host with a down access link is a singleton.
	if err := n.SetHostLinkUp(4, false); err != nil {
		t.Fatal(err)
	}
	c = n.TrueClusters()
	if c[4] == c[1] || c[4] == c[2] || c[4] == c[3] {
		t.Errorf("crashed host still clustered: %v", c)
	}
}

func TestInterClusterSendCounting(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	s1, s2 := n.AddServer(), n.AddServer()
	if _, err := n.AddLink(s1, s2, LinkConfig{Class: Expensive, Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(1, s1, LinkConfig{Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(2, s1, LinkConfig{Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(3, s2, LinkConfig{Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	for _, h := range []HostID{2, 3} {
		if err := n.Handle(h, func(time.Duration, Envelope) {}); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.Send(1, 2, "intra"); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(1, 3, "inter"); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got := n.Stats().InterClusterSends; got != 1 {
		t.Errorf("InterClusterSends = %d, want 1", got)
	}
}

func TestSendValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	s := n.AddServer()
	if err := n.AttachHost(1, s, LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(1, 99, "x"); err == nil {
		t.Error("Send to unknown host succeeded")
	}
	if err := n.Send(99, 1, "x"); err == nil {
		t.Error("Send from unknown host succeeded")
	}
	if err := n.Send(1, 1, "x"); err == nil {
		t.Error("Send to self succeeded")
	}
}

func TestTopologyValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	s := n.AddServer()
	if _, err := n.AddLink(s, s, LinkConfig{}); err == nil {
		t.Error("self-link accepted")
	}
	if _, err := n.AddLink(s, 99, LinkConfig{}); err == nil {
		t.Error("link to unknown server accepted")
	}
	if _, err := n.AddLink(s, s+1, LinkConfig{LossProb: 1.5}); err == nil {
		t.Error("invalid loss probability accepted")
	}
	if err := n.AttachHost(0, s, LinkConfig{}); err == nil {
		t.Error("host id 0 accepted")
	}
	if err := n.AttachHost(1, 99, LinkConfig{}); err == nil {
		t.Error("attach to unknown server accepted")
	}
	if err := n.AttachHost(1, s, LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(1, s, LinkConfig{}); err == nil {
		t.Error("duplicate host accepted")
	}
}

func TestPathExists(t *testing.T) {
	eng, n, _, links := lineNet(t, LinkConfig{Jitter: 0})
	_ = eng
	if !n.PathExists(1, 2) {
		t.Error("PathExists = false on connected net")
	}
	if err := n.SetLinkUp(links[0], false); err != nil {
		t.Fatal(err)
	}
	if n.PathExists(1, 2) {
		t.Error("PathExists = true across a cut")
	}
	if err := n.SetLinkUp(links[0], true); err != nil {
		t.Fatal(err)
	}
	if err := n.SetHostLinkUp(2, false); err != nil {
		t.Fatal(err)
	}
	if n.PathExists(1, 2) {
		t.Error("PathExists = true to crashed host")
	}
}

func TestSameServerHosts(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	s := n.AddServer()
	if err := n.AttachHost(1, s, LinkConfig{Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(2, s, LinkConfig{Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	got := collect(t, n, 2)
	if err := n.Send(1, 2, "local"); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(*got) != 1 {
		t.Fatalf("delivered %d, want 1", len(*got))
	}
	if (*got)[0].Hops != 2 {
		t.Errorf("hops = %d, want 2 (two host links)", (*got)[0].Hops)
	}
}

func TestDeterministicDelivery(t *testing.T) {
	run := func() []int {
		eng := sim.NewEngine(11)
		n := New(eng)
		s1, s2 := n.AddServer(), n.AddServer()
		if _, err := n.AddLink(s1, s2, LinkConfig{Jitter: 5 * time.Millisecond, LossProb: 0.2}); err != nil {
			t.Fatal(err)
		}
		if err := n.AttachHost(1, s1, LinkConfig{Jitter: 0}); err != nil {
			t.Fatal(err)
		}
		if err := n.AttachHost(2, s2, LinkConfig{Jitter: 0}); err != nil {
			t.Fatal(err)
		}
		var order []int
		if err := n.Handle(2, func(_ time.Duration, env Envelope) {
			order = append(order, env.Payload.(int))
		}); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			if err := n.Send(1, 2, i); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d", i)
		}
	}
}
