package netsim

import (
	"fmt"
	"math/rand"
	"time"
)

// Randomized topology material for the soak engine: link configurations
// drawn from bounded distributions and extra links sprinkled over an
// existing server graph. Everything here draws exclusively from the
// caller's rng, so a seeded source reproduces the exact same network.

// RandomLinkBounds bounds the distributions RandomLinkConfig draws from.
type RandomLinkBounds struct {
	// MinDelay and MaxDelay bound the base per-traversal latency.
	MinDelay, MaxDelay time.Duration
	// MaxLoss bounds the per-traversal loss probability.
	MaxLoss float64
	// MaxDup bounds the per-traversal duplication probability.
	MaxDup float64
}

// DefaultCheapBounds are LAN-like: fast, mostly reliable.
func DefaultCheapBounds() RandomLinkBounds {
	return RandomLinkBounds{
		MinDelay: 500 * time.Microsecond,
		MaxDelay: 3 * time.Millisecond,
		MaxLoss:  0.05,
		MaxDup:   0.02,
	}
}

// DefaultExpensiveBounds are long-haul-like: slow, lossier.
func DefaultExpensiveBounds() RandomLinkBounds {
	return RandomLinkBounds{
		MinDelay: 10 * time.Millisecond,
		MaxDelay: 45 * time.Millisecond,
		MaxLoss:  0.10,
		MaxDup:   0.03,
	}
}

// RandomLinkConfig draws a link configuration of the given class from
// rng, within bounds. Jitter is drawn in [0, delay], so reordering is
// always possible but bounded by the base latency.
func RandomLinkConfig(rng *rand.Rand, class LinkClass, b RandomLinkBounds) LinkConfig {
	if b.MaxDelay < b.MinDelay {
		b.MaxDelay = b.MinDelay
	}
	delay := b.MinDelay
	if span := b.MaxDelay - b.MinDelay; span > 0 {
		delay += time.Duration(rng.Int63n(int64(span) + 1))
	}
	return LinkConfig{
		Class:    class,
		Delay:    delay,
		Jitter:   time.Duration(rng.Int63n(int64(delay) + 1)),
		LossProb: rng.Float64() * b.MaxLoss,
		DupProb:  rng.Float64() * b.MaxDup,
	}
}

// AddRandomLinks joins count random distinct pairs from servers with
// links of the given configuration, skipping self-pairs. Parallel links
// between an already-joined pair are allowed (the network is a
// multigraph); routing simply has more choices. It returns the created
// link IDs in creation order.
func (n *Network) AddRandomLinks(rng *rand.Rand, servers []ServerID, count int, cfg LinkConfig) ([]LinkID, error) {
	if len(servers) < 2 || count <= 0 {
		return nil, nil
	}
	out := make([]LinkID, 0, count)
	for i := 0; i < count; i++ {
		a := servers[rng.Intn(len(servers))]
		b := servers[rng.Intn(len(servers))]
		if a == b {
			continue // tolerate the collision; fewer links, same determinism
		}
		id, err := n.AddLink(a, b, cfg)
		if err != nil {
			return out, fmt.Errorf("netsim: random link %d–%d: %w", a, b, err)
		}
		out = append(out, id)
	}
	return out, nil
}
