package netsim

import (
	"fmt"
	"time"
)

// Topology-aware shard assignment. Lanes are the connected components of
// the server graph restricted to cheap links — the paper's clusters, up
// to repair state — with every host following its server. Two properties
// make this the right partition for conservative parallel simulation:
//
//  1. Every cross-lane server link is expensive (a cheap link would have
//     merged its endpoints into one lane), so the minimum cross-lane
//     delay — the lookahead bound δ — is large: 30ms by default, against
//     1ms cheap-link delays inside a lane. Wide epochs mean few barriers.
//  2. The partition is a static property of the *built* topology:
//     links are classified by construction, not by up/down state, so
//     runtime failures and repairs never re-partition the simulation and
//     the lane layout (hence the per-lane PRNG stream assignment) is a
//     pure function of (seed, scenario).
//
// Host links never cross lanes, and intra-lane traffic — the cheap-path
// bulk of any clustered workload — runs entirely inside one lane's
// epoch, at full sequential-engine speed.

// ShardPlan is a topology-derived lane partition, consumable by
// sim.Sharded.SetLanes and ApplyShardPlan.
type ShardPlan struct {
	// Lanes is the number of lanes (cheap-link components).
	Lanes int
	// ServerLane and HostLane map every server and host to its lane.
	ServerLane map[ServerID]int
	// HostLane maps every host to its server's lane.
	HostLane map[HostID]int
	// Weights counts hosts per lane; used to balance lanes across
	// workers.
	Weights []int
	// Lookahead is the minimum configured Delay over links joining
	// different lanes, or 0 when no link crosses lanes (unbounded
	// epochs). Jitter is additive in this simulator, so Delay is a true
	// lower bound on every cross-lane hop.
	Lookahead time.Duration
}

// ComputeShardPlan derives the lane partition from the current topology.
// Call it after the topology is fully built; the plan embeds no up/down
// state, so subsequent failures and repairs do not invalidate it.
func (n *Network) ComputeShardPlan() *ShardPlan {
	// Union-find over servers joined by any cheap link, up or down.
	parent := make(map[ServerID]ServerID, len(n.servers))
	servers := n.Servers()
	for _, id := range servers {
		parent[id] = id
	}
	var find func(ServerID) ServerID
	find = func(s ServerID) ServerID {
		for parent[s] != s {
			parent[s] = parent[parent[s]]
			s = parent[s]
		}
		return s
	}
	for _, l := range n.sortedLinks() {
		if l.cfg.Class != Cheap {
			continue
		}
		ra, rb := find(l.a), find(l.b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	// Number lanes densely by ascending lowest member server ID.
	p := &ShardPlan{
		ServerLane: make(map[ServerID]int, len(n.servers)),
		HostLane:   make(map[HostID]int, len(n.hosts)),
	}
	rootLane := make(map[ServerID]int)
	for _, id := range servers {
		r := find(id)
		lane, ok := rootLane[r]
		if !ok {
			lane = p.Lanes
			p.Lanes++
			rootLane[r] = lane
		}
		p.ServerLane[id] = lane
	}
	p.Weights = make([]int, p.Lanes)
	for _, h := range n.Hosts() {
		lane := p.ServerLane[n.hosts[h].server]
		p.HostLane[h] = lane
		p.Weights[lane]++
	}

	// Lookahead: the smallest configured delay on any lane-crossing
	// link. By construction such links are all expensive-class.
	for _, l := range n.sortedLinks() {
		if p.ServerLane[l.a] == p.ServerLane[l.b] {
			continue
		}
		if p.Lookahead == 0 || l.cfg.Delay < p.Lookahead {
			p.Lookahead = l.cfg.Delay
		}
	}
	return p
}

// ApplyShardPlan partitions the network's mutable state (stats, route
// and cluster caches, PRNG draws) by the plan's lanes and freezes the
// topology: no servers, links, or hosts may be added afterwards (link
// and host up/down toggles remain legal from parked contexts). The
// driving loop must already expose exactly the plan's lanes — for
// sim.Sharded, call SetLanes(p.Weights, p.Lookahead) first.
//
// Call order: build topology → ComputeShardPlan → SetLanes →
// ApplyShardPlan → attach handlers and schedule lane events.
func (n *Network) ApplyShardPlan(p *ShardPlan) error {
	if p == nil || p.Lanes < 1 {
		return fmt.Errorf("netsim: invalid shard plan")
	}
	if n.planFrozen {
		return fmt.Errorf("netsim: shard plan already applied")
	}
	if got := n.eng.Lanes(); got != p.Lanes {
		return fmt.Errorf("netsim: engine has %d lanes, plan has %d (call SetLanes with the plan's weights first)", got, p.Lanes)
	}
	if len(p.ServerLane) != len(n.servers) || len(p.HostLane) != len(n.hosts) {
		return fmt.Errorf("netsim: shard plan covers %d servers/%d hosts, topology has %d/%d (recompute after building)",
			len(p.ServerLane), len(p.HostLane), len(n.servers), len(n.hosts))
	}
	n.lanes = p.Lanes
	n.serverLane = p.ServerLane
	n.hostLane = p.HostLane
	n.statsLanes = make([]*Stats, p.Lanes)
	for i := range n.statsLanes {
		n.statsLanes[i] = newStats()
	}
	n.caches = make([]laneCaches, p.Lanes+1)
	n.planFrozen = true
	return nil
}

// Lanes reports the network's lane count (1 without a shard plan).
func (n *Network) Lanes() int { return n.lanes }

// LaneOfHost reports the lane executing host h's traffic (0 without a
// shard plan).
func (n *Network) LaneOfHost(h HostID) int { return n.laneOfHost(h) }
