// Package netsim simulates an ARPA-like point-to-point communication
// subnetwork with nonprogrammable servers.
//
// The simulated network consists of servers (switches) joined by
// bidirectional links and hosts attached to servers via host links. The
// only service offered to hosts is single-destination message delivery —
// there is no multicast, exactly as the paper assumes. Servers route
// hop by hop using adaptive shortest-path routing recomputed whenever
// topology changes (standing in for the ARPANET SPF routing the paper's
// transitivity assumption relies on).
//
// Links are cheap (high bandwidth, LAN-like) or expensive (low bandwidth,
// long haul). A message that traverses at least one expensive link is
// delivered with its cost bit set — the single piece of dynamic
// information the paper grants hosts. Links fail and recover silently;
// messages can be lost, duplicated, and reordered (via delay jitter), and
// none of this is reported to hosts.
package netsim

import (
	"fmt"
	"sort"
	"time"

	"rbcast/internal/sim"
)

// HostID identifies a participating host. Valid IDs are positive; 0 is
// the nil host.
type HostID int

// Nil is the zero HostID, used as "no host" (e.g. a nil parent pointer).
const Nil HostID = 0

// ServerID identifies a communication server. Valid IDs are positive.
type ServerID int

// LinkID identifies a server-to-server link.
type LinkID int

// LinkClass classifies link bandwidth per the paper: cheap links are
// LAN-like and expensive links are long-haul.
type LinkClass int

const (
	// Cheap is a high-bandwidth (intra-cluster) link.
	Cheap LinkClass = iota + 1
	// Expensive is a low-bandwidth (inter-cluster) link.
	Expensive
)

// String implements fmt.Stringer.
func (c LinkClass) String() string {
	switch c {
	case Cheap:
		return "cheap"
	case Expensive:
		return "expensive"
	default:
		return fmt.Sprintf("LinkClass(%d)", int(c))
	}
}

// routing weights: shortest-path routing strongly prefers cheap links, so
// intra-cluster traffic stays on cheap paths whenever one exists.
const (
	weightCheap     = 1
	weightExpensive = 1000
)

// LinkConfig describes a link's behaviour.
type LinkConfig struct {
	// Class is Cheap or Expensive. The zero value defaults to Cheap.
	Class LinkClass
	// Delay is the base per-traversal latency. Defaults to 1ms for cheap
	// and 30ms for expensive links when zero.
	Delay time.Duration
	// Jitter adds a uniform random [0, Jitter) to each traversal,
	// producing reordering. Defaults to Delay/2 when negative; zero means
	// no jitter.
	Jitter time.Duration
	// LossProb is the probability a traversal silently drops the message.
	LossProb float64
	// DupProb is the probability a traversal delivers a second copy.
	DupProb float64
}

func (c LinkConfig) withDefaults() (LinkConfig, error) {
	if c.Class == 0 {
		c.Class = Cheap
	}
	if c.Class != Cheap && c.Class != Expensive {
		return c, fmt.Errorf("netsim: invalid link class %d", c.Class)
	}
	if c.Delay == 0 {
		if c.Class == Cheap {
			c.Delay = time.Millisecond
		} else {
			c.Delay = 30 * time.Millisecond
		}
	}
	if c.Delay < 0 {
		return c, fmt.Errorf("netsim: negative delay %v", c.Delay)
	}
	if c.Jitter < 0 {
		c.Jitter = c.Delay / 2
	}
	if c.LossProb < 0 || c.LossProb > 1 {
		return c, fmt.Errorf("netsim: loss probability %v out of range", c.LossProb)
	}
	if c.DupProb < 0 || c.DupProb > 1 {
		return c, fmt.Errorf("netsim: duplication probability %v out of range", c.DupProb)
	}
	return c, nil
}

type link struct {
	id   LinkID
	a, b ServerID
	cfg  LinkConfig
	up   bool
}

func (l *link) weight() int {
	if l.cfg.Class == Expensive {
		return weightExpensive
	}
	return weightCheap
}

func (l *link) other(s ServerID) ServerID {
	if s == l.a {
		return l.b
	}
	return l.a
}

type server struct {
	id    ServerID
	links []*link // attached links, in creation order
}

type hostPort struct {
	id       HostID
	server   ServerID
	cfg      LinkConfig
	up       bool
	handler  Handler
	transmit TransmitHook
}

// Envelope is a host-to-host message in flight or as delivered.
type Envelope struct {
	// From and To are the endpoint hosts.
	From, To HostID
	// CostBit reports whether the message traversed an expensive link,
	// per the paper's cost-bit service.
	CostBit bool
	// Payload is the opaque host-level message.
	Payload any
	// SentAt is the virtual time the source host handed the message to
	// its server.
	SentAt time.Duration
	// Hops counts link traversals so far (including host links).
	Hops int
}

// Handler receives messages delivered to a host.
type Handler func(now time.Duration, env Envelope)

// Outbound is one transmission produced by a TransmitHook: the (possibly
// rewritten) payload, its destination, and whether the cost bit is
// forced on regardless of the path taken. Forcing the bit off is not
// offered — the network sets it on any expensive traversal, exactly as
// the paper's model dictates — so a hostile host can claim a cheap path
// was expensive but never the reverse.
type Outbound struct {
	To           HostID
	Payload      any
	ForceCostBit bool
}

// TransmitHook intercepts one host-level Send at the transmit seam,
// before the message enters the network: it receives the intended
// destination and payload and returns the transmissions that actually
// happen — zero (silent drop), one (possibly rewritten), or several
// (duplication, equivocation to extra destinations). The fault-injection
// layer (internal/adversary) installs these to model hostile hosts
// without touching protocol code; the host above the hook keeps running
// the correct algorithm and never learns its traffic was rewritten.
type TransmitHook func(to HostID, payload any) []Outbound

// Stats aggregates network-level counters for a run.
type Stats struct {
	// HostSends counts host-level Send calls.
	HostSends uint64
	// Delivered counts messages handed to destination hosts.
	Delivered uint64
	// LinkTransmissions counts traversals per link class (including host
	// links, which are classed by their config).
	LinkTransmissions map[LinkClass]uint64
	// PerLink counts traversals of each server-to-server link.
	PerLink map[LinkID]uint64
	// HostLinkTransmissions counts traversals of each host's access link,
	// in either direction. The paper's source-congestion argument is
	// about exactly this counter at the source.
	HostLinkTransmissions map[HostID]uint64
	// InterClusterSends counts host-level sends whose endpoints were in
	// different true clusters at send time — the paper's §5 cost metric.
	InterClusterSends uint64
	// Lost counts messages dropped by link loss probability.
	Lost uint64
	// Duplicated counts extra copies injected by duplication.
	Duplicated uint64
	// DroppedLinkDown counts messages dropped because a link on their
	// path was down at traversal time.
	DroppedLinkDown uint64
	// DroppedNoRoute counts messages dropped because no up path existed.
	DroppedNoRoute uint64
}

func newStats() *Stats {
	return &Stats{
		LinkTransmissions:     make(map[LinkClass]uint64),
		PerLink:               make(map[LinkID]uint64),
		HostLinkTransmissions: make(map[HostID]uint64),
	}
}

// laneCaches is one execution context's private routing and clustering
// memo. Sharded runs give every lane its own slot (plus one for the
// parked/global context) so lanes can lazily recompute routes after a
// topology change without sharing mutable state.
type laneCaches struct {
	routeCache  map[ServerID]map[ServerID]ServerID
	routeVer    uint64
	clusterMemo map[HostID]int
	clusterVer  uint64
}

// Network is the simulated communication subnetwork. It is driven by a
// sim.Loop — the sequential engine or the sharded parallel engine. With
// a shard plan applied (see ApplyShardPlan), transmissions run
// concurrently on per-lane worker goroutines; every mutable piece of
// network state is then either lane-partitioned (stats, caches, PRNG
// draws) or frozen (topology maps), so the network needs no locks.
// Topology mutations (Set*Up) and topology construction remain legal
// only from parked contexts: build time, global events, or between Run
// calls.
type Network struct {
	eng     sim.Loop
	servers map[ServerID]*server
	links   map[LinkID]*link
	hosts   map[HostID]*hostPort

	nextServer ServerID
	nextLink   LinkID

	// version increments on every topology change; routing tables and the
	// true-cluster map are cached per version, per lane.
	version uint64
	// caches has one slot per lane plus a final slot for the
	// parked/global context; before a shard plan is applied it is a
	// single shared slot.
	caches []laneCaches

	// statsLanes holds one counter set per lane; Stats merges them.
	// Before a shard plan is applied there is a single set, shared.
	statsLanes []*Stats

	// Shard plan state: nil/0 until ApplyShardPlan.
	lanes      int
	serverLane map[ServerID]int
	hostLane   map[HostID]int
	planFrozen bool

	// OnSend, if set, observes every host-level Send after it is
	// classified (for metrics/tracing). lane is the executing lane (0
	// without a shard plan); observers must confine mutable state per
	// lane or synchronize it themselves.
	OnSend func(lane int, env Envelope, interCluster bool)
	// OnLinkTransmit, if set, observes every server-to-server link
	// traversal (after loss is decided, before delay), on the executing
	// lane.
	OnLinkTransmit func(lane int, link LinkID, class LinkClass, env Envelope)
	// OnHostLinkTransmit, if set, observes every host access-link
	// traversal (in either direction), on the executing lane.
	OnHostLinkTransmit func(lane int, h HostID, env Envelope)
}

// New returns an empty network driven by eng.
func New(eng sim.Loop) *Network {
	if eng == nil {
		panic("netsim: nil engine")
	}
	return &Network{
		eng:        eng,
		servers:    make(map[ServerID]*server),
		links:      make(map[LinkID]*link),
		hosts:      make(map[HostID]*hostPort),
		version:    1,
		caches:     make([]laneCaches, 1),
		statsLanes: []*Stats{newStats()},
		lanes:      1,
	}
}

// Engine returns the driving simulation loop.
func (n *Network) Engine() sim.Loop { return n.eng }

// Stats returns the run's counters. Without a shard plan this is the
// live counter set (legacy behavior); with one it is a merged snapshot
// of every lane's counters, valid to read from parked contexts only.
func (n *Network) Stats() *Stats {
	if len(n.statsLanes) == 1 {
		return n.statsLanes[0]
	}
	merged := newStats()
	for _, st := range n.statsLanes {
		merged.add(st)
	}
	return merged
}

// add accumulates o into s.
func (s *Stats) add(o *Stats) {
	s.HostSends += o.HostSends
	s.Delivered += o.Delivered
	s.InterClusterSends += o.InterClusterSends
	s.Lost += o.Lost
	s.Duplicated += o.Duplicated
	s.DroppedLinkDown += o.DroppedLinkDown
	s.DroppedNoRoute += o.DroppedNoRoute
	for k, v := range o.LinkTransmissions {
		s.LinkTransmissions[k] += v
	}
	for k, v := range o.PerLink {
		s.PerLink[k] += v
	}
	for k, v := range o.HostLinkTransmissions {
		s.HostLinkTransmissions[k] += v
	}
}

// ResetStats zeroes all counters (topology is unchanged).
func (n *Network) ResetStats() {
	for i := range n.statsLanes {
		n.statsLanes[i] = newStats()
	}
}

// laneOfHost returns the lane executing traffic for host h (0 without a
// shard plan).
func (n *Network) laneOfHost(h HostID) int {
	if n.hostLane == nil {
		return 0
	}
	return n.hostLane[h]
}

// laneOfServer returns the lane owning server s (0 without a shard
// plan).
func (n *Network) laneOfServer(s ServerID) int {
	if n.serverLane == nil {
		return 0
	}
	return n.serverLane[s]
}

// globalLane indexes the cache slot reserved for parked/global-context
// queries (the last slot; slot 0 before a shard plan is applied).
func (n *Network) globalLane() int { return len(n.caches) - 1 }

// AddServer creates a new server and returns its ID.
func (n *Network) AddServer() ServerID {
	n.checkNotFrozen()
	n.nextServer++
	id := n.nextServer
	n.servers[id] = &server{id: id}
	n.bump()
	return id
}

// checkNotFrozen panics when topology construction is attempted after a
// shard plan froze the partition; lanes are derived from the built
// topology, so growing it afterwards would silently misroute work.
func (n *Network) checkNotFrozen() {
	if n.planFrozen {
		panic("netsim: topology change after shard plan was applied")
	}
}

// Servers returns all server IDs in ascending order.
func (n *Network) Servers() []ServerID {
	out := make([]ServerID, 0, len(n.servers))
	for id := range n.servers {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddLink joins servers a and b with a bidirectional link. The link
// starts up.
func (n *Network) AddLink(a, b ServerID, cfg LinkConfig) (LinkID, error) {
	n.checkNotFrozen()
	sa, ok := n.servers[a]
	if !ok {
		return 0, fmt.Errorf("netsim: unknown server %d", a)
	}
	sb, ok := n.servers[b]
	if !ok {
		return 0, fmt.Errorf("netsim: unknown server %d", b)
	}
	if a == b {
		return 0, fmt.Errorf("netsim: self-link on server %d", a)
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return 0, err
	}
	n.nextLink++
	l := &link{id: n.nextLink, a: a, b: b, cfg: cfg, up: true}
	n.links[l.id] = l
	sa.links = append(sa.links, l)
	sb.links = append(sb.links, l)
	n.bump()
	return l.id, nil
}

// AttachHost connects host h to server s with the given host-link
// behaviour. Host IDs must be unique and positive.
func (n *Network) AttachHost(h HostID, s ServerID, cfg LinkConfig) error {
	n.checkNotFrozen()
	if h <= 0 {
		return fmt.Errorf("netsim: invalid host id %d", h)
	}
	if _, dup := n.hosts[h]; dup {
		return fmt.Errorf("netsim: host %d already attached", h)
	}
	if _, ok := n.servers[s]; !ok {
		return fmt.Errorf("netsim: unknown server %d", s)
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return err
	}
	n.hosts[h] = &hostPort{id: h, server: s, cfg: cfg, up: true}
	n.bump()
	return nil
}

// Hosts returns all attached host IDs in ascending order.
func (n *Network) Hosts() []HostID {
	out := make([]HostID, 0, len(n.hosts))
	for id := range n.hosts {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HostServer returns the server a host is attached to.
func (n *Network) HostServer(h HostID) (ServerID, error) {
	hp, ok := n.hosts[h]
	if !ok {
		return 0, fmt.Errorf("netsim: unknown host %d", h)
	}
	return hp.server, nil
}

// Handle registers the delivery handler for host h, replacing any
// previous handler.
func (n *Network) Handle(h HostID, fn Handler) error {
	hp, ok := n.hosts[h]
	if !ok {
		return fmt.Errorf("netsim: unknown host %d", h)
	}
	hp.handler = fn
	return nil
}

// SetTransmitHook installs (or, with nil, removes) the transmit-seam
// interceptor for host h. Every subsequent Send from h is routed through
// the hook; see TransmitHook for the contract.
func (n *Network) SetTransmitHook(h HostID, hook TransmitHook) error {
	hp, ok := n.hosts[h]
	if !ok {
		return fmt.Errorf("netsim: unknown host %d", h)
	}
	hp.transmit = hook
	return nil
}

// SetLinkUp changes a server link's state. Routing adapts on the next
// forwarding decision.
func (n *Network) SetLinkUp(id LinkID, up bool) error {
	l, ok := n.links[id]
	if !ok {
		return fmt.Errorf("netsim: unknown link %d", id)
	}
	if l.up != up {
		l.up = up
		n.bump()
	}
	return nil
}

// LinkUp reports a link's current state.
func (n *Network) LinkUp(id LinkID) (bool, error) {
	l, ok := n.links[id]
	if !ok {
		return false, fmt.Errorf("netsim: unknown link %d", id)
	}
	return l.up, nil
}

// SetHostLinkUp changes a host's access-link state. Cutting it simulates
// a host crash, per the paper's §2 argument.
func (n *Network) SetHostLinkUp(h HostID, up bool) error {
	hp, ok := n.hosts[h]
	if !ok {
		return fmt.Errorf("netsim: unknown host %d", h)
	}
	if hp.up != up {
		hp.up = up
		n.bump()
	}
	return nil
}

// LinksBetween returns the IDs of links with one endpoint in each server
// set; useful for partitioning a topology.
func (n *Network) LinksBetween(a, b []ServerID) []LinkID {
	inA := make(map[ServerID]bool, len(a))
	for _, s := range a {
		inA[s] = true
	}
	inB := make(map[ServerID]bool, len(b))
	for _, s := range b {
		inB[s] = true
	}
	var out []LinkID
	for _, l := range n.sortedLinks() {
		if (inA[l.a] && inB[l.b]) || (inA[l.b] && inB[l.a]) {
			out = append(out, l.id)
		}
	}
	return out
}

// Links returns all link IDs in ascending order.
func (n *Network) Links() []LinkID {
	out := make([]LinkID, 0, len(n.links))
	for id := range n.links {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LinkClassOf returns a link's class.
func (n *Network) LinkClassOf(id LinkID) (LinkClass, error) {
	l, ok := n.links[id]
	if !ok {
		return 0, fmt.Errorf("netsim: unknown link %d", id)
	}
	return l.cfg.Class, nil
}

// LinkEnds returns a link's endpoint servers.
func (n *Network) LinkEnds(id LinkID) (ServerID, ServerID, error) {
	l, ok := n.links[id]
	if !ok {
		return 0, 0, fmt.Errorf("netsim: unknown link %d", id)
	}
	return l.a, l.b, nil
}

func (n *Network) bump() {
	n.version++
}

func (n *Network) sortedLinks() []*link {
	out := make([]*link, 0, len(n.links))
	for _, l := range n.links {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}
