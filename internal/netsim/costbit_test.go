package netsim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"rbcast/internal/sim"
)

// Property: on a static topology, a delivered message carries the cost
// bit exactly when its endpoints are NOT connected by cheap links alone.
// (Routing weights make any all-cheap path beat any path with an
// expensive link, so this is the simulator's contract with the paper's
// cluster model.)
func TestCostBitMatchesCheapConnectivity(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			eng := sim.NewEngine(seed)
			n := New(eng)

			nServers := 4 + rng.Intn(8)
			servers := make([]ServerID, nServers)
			for i := range servers {
				servers[i] = n.AddServer()
			}
			randClass := func() LinkClass {
				if rng.Intn(2) == 0 {
					return Cheap
				}
				return Expensive
			}
			// A chain guarantees global connectivity; extra random links
			// add diversity.
			type edge struct {
				a, b  ServerID
				class LinkClass
			}
			var edges []edge
			addLink := func(a, b ServerID) {
				class := randClass()
				if _, err := n.AddLink(a, b, LinkConfig{Class: class, Jitter: 0}); err != nil {
					t.Fatal(err)
				}
				edges = append(edges, edge{a: a, b: b, class: class})
			}
			for i := 0; i+1 < nServers; i++ {
				addLink(servers[i], servers[i+1])
			}
			for extra := 0; extra < nServers/2; extra++ {
				a, b := rng.Intn(nServers), rng.Intn(nServers)
				if a != b {
					addLink(servers[a], servers[b])
				}
			}
			// A host on every server.
			for i, s := range servers {
				if err := n.AttachHost(HostID(i+1), s, LinkConfig{Jitter: 0}); err != nil {
					t.Fatal(err)
				}
			}

			// Ground truth: union-find over cheap links only.
			parent := make(map[ServerID]ServerID)
			for _, s := range servers {
				parent[s] = s
			}
			var find func(ServerID) ServerID
			find = func(s ServerID) ServerID {
				for parent[s] != s {
					parent[s] = parent[parent[s]]
					s = parent[s]
				}
				return s
			}
			for _, e := range edges {
				if e.class == Cheap {
					parent[find(e.a)] = find(e.b)
				}
			}

			type obs struct {
				costBit bool
			}
			got := map[[2]HostID]obs{}
			for _, h := range n.Hosts() {
				h := h
				if err := n.Handle(h, func(_ time.Duration, env Envelope) {
					got[[2]HostID{env.From, h}] = obs{costBit: env.CostBit}
				}); err != nil {
					t.Fatal(err)
				}
			}
			for _, a := range n.Hosts() {
				for _, b := range n.Hosts() {
					if a != b {
						if err := n.Send(a, b, "probe"); err != nil {
							t.Fatal(err)
						}
					}
				}
			}
			if err := eng.RunUntilIdle(); err != nil {
				t.Fatal(err)
			}

			for _, a := range n.Hosts() {
				for _, b := range n.Hosts() {
					if a == b {
						continue
					}
					o, delivered := got[[2]HostID{a, b}]
					if !delivered {
						t.Fatalf("message %d→%d not delivered on lossless net", a, b)
					}
					sa, sb := servers[a-1], servers[b-1]
					cheaplyConnected := find(sa) == find(sb)
					if o.costBit == cheaplyConnected {
						t.Errorf("%d→%d: costBit=%v but cheaplyConnected=%v",
							a, b, o.costBit, cheaplyConnected)
					}
				}
			}
		})
	}
}
