package netsim

import (
	"testing"
	"time"

	"rbcast/internal/sim"
)

// buildGrid wires a g×g server grid with hosts on the diagonal.
func buildGrid(b *testing.B, g int) (*sim.Engine, *Network) {
	b.Helper()
	eng := sim.NewEngine(1)
	n := New(eng)
	ids := make([][]ServerID, g)
	for r := 0; r < g; r++ {
		ids[r] = make([]ServerID, g)
		for c := 0; c < g; c++ {
			ids[r][c] = n.AddServer()
			if c > 0 {
				if _, err := n.AddLink(ids[r][c-1], ids[r][c], LinkConfig{Jitter: 0}); err != nil {
					b.Fatal(err)
				}
			}
			if r > 0 {
				if _, err := n.AddLink(ids[r-1][c], ids[r][c], LinkConfig{Jitter: 0}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	for i := 0; i < g; i++ {
		if err := n.AttachHost(HostID(i+1), ids[i][i], LinkConfig{Jitter: 0}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 1; i <= g; i++ {
		if err := n.Handle(HostID(i), func(time.Duration, Envelope) {}); err != nil {
			b.Fatal(err)
		}
	}
	return eng, n
}

// BenchmarkRoutingRecompute measures a cold Dijkstra sweep after every
// topology change on a 100-server grid — the adaptive-routing cost.
func BenchmarkRoutingRecompute(b *testing.B) {
	eng, n := buildGrid(b, 10)
	link := n.Links()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Flip a link to invalidate caches, then force a route lookup via
		// a corner-to-corner send.
		if err := n.SetLinkUp(link, i%2 == 0); err != nil {
			b.Fatal(err)
		}
		if err := n.Send(1, 10, i); err != nil {
			b.Fatal(err)
		}
		if err := eng.RunUntilIdle(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSendWarmRoutes measures steady-state message forwarding with
// warm routing caches.
func BenchmarkSendWarmRoutes(b *testing.B) {
	eng, n := buildGrid(b, 10)
	if err := n.Send(1, 10, 0); err != nil {
		b.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := n.Send(1, 10, i); err != nil {
			b.Fatal(err)
		}
		if err := eng.RunUntilIdle(); err != nil {
			b.Fatal(err)
		}
	}
}
