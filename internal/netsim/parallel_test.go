package netsim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"rbcast/internal/sim"
)

// Regression test: when two parallel links of different classes join the
// same pair of servers (a cheap path repaired next to an old expensive
// link), forwarding must use the cheap one — otherwise messages carry a
// spurious cost bit and protocol hosts never merge their cluster views.
func TestParallelLinksPreferCheap(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	s1, s2 := n.AddServer(), n.AddServer()
	expLink, err := n.AddLink(s1, s2, LinkConfig{Class: Expensive, Jitter: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(1, s1, LinkConfig{Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(2, s2, LinkConfig{Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	var got []Envelope
	if err := n.Handle(2, func(_ time.Duration, env Envelope) { got = append(got, env) }); err != nil {
		t.Fatal(err)
	}

	// Only the expensive link exists: the cost bit must be set.
	if err := n.Send(1, 2, "a"); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].CostBit {
		t.Fatalf("expected one expensive delivery, got %+v", got)
	}

	// A cheap parallel link appears (higher link ID). Both routing and
	// forwarding must now prefer it.
	cheapLink, err := n.AddLink(s1, s2, LinkConfig{Class: Cheap, Jitter: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Send(1, 2, "b"); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("second message not delivered")
	}
	if got[1].CostBit {
		t.Error("message crossed the expensive parallel link despite a cheap one existing")
	}
	if n.Stats().PerLink[cheapLink] == 0 {
		t.Error("cheap parallel link unused")
	}

	// Cheap link fails: traffic falls back to the expensive one.
	if err := n.SetLinkUp(cheapLink, false); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(1, 2, "c"); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !got[2].CostBit {
		t.Fatalf("fallback to expensive link failed: %+v", got)
	}
	if n.Stats().PerLink[expLink] != 2 {
		t.Errorf("expensive link used %d times, want 2", n.Stats().PerLink[expLink])
	}
}

// TestTransmitHookTraceIdentity pins the property the adversary layer
// is built on: installing a transmit hook — even one that drops,
// rewrites, or fans out traffic — costs nothing in determinism. The
// same seed must yield a byte-identical delivery trace across runs for
// every hook shape, because soak replay and shrinking depend on it.
func TestTransmitHookTraceIdentity(t *testing.T) {
	cases := []struct {
		name    string
		install func(n *Network) error
	}{
		{"no-hook", func(n *Network) error { return nil }},
		{"silence", func(n *Network) error {
			// Host 2 silently withholds everything addressed to host 4.
			return n.SetTransmitHook(2, func(to HostID, payload any) []Outbound {
				if to == 4 {
					return nil
				}
				return []Outbound{{To: to, Payload: payload}}
			})
		}},
		{"equivocate", func(n *Network) error {
			// Host 2 tells every destination a different story.
			return n.SetTransmitHook(2, func(to HostID, payload any) []Outbound {
				return []Outbound{{To: to, Payload: fmt.Sprintf("forged-for-%d:%v", to, payload)}}
			})
		}},
		{"forge-cost-fanout", func(n *Network) error {
			// Host 5 duplicates each send to two fixed peers and lies
			// about the path class on the copies.
			return n.SetTransmitHook(5, func(to HostID, payload any) []Outbound {
				return []Outbound{
					{To: to, Payload: payload},
					{To: 1, Payload: payload, ForceCostBit: true},
					{To: 3, Payload: payload, ForceCostBit: true},
				}
			})
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a, err := runHookTrace(t, 7, tc.install)
			if err != nil {
				t.Fatal(err)
			}
			b, err := runHookTrace(t, 7, tc.install)
			if err != nil {
				t.Fatal(err)
			}
			if a == "" {
				t.Fatal("empty delivery trace; the comparison is vacuous")
			}
			if a != b {
				t.Fatalf("same seed, diverging traces:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
			}
			other, err := runHookTrace(t, 8, tc.install)
			if err != nil {
				t.Fatal(err)
			}
			if a == other {
				t.Fatal("different seeds produced identical traces; jitter/loss draws are not live")
			}
		})
	}
}

// runHookTrace drives fixed traffic over a lossy, jittery three-server
// topology with the given hook installed and returns the full delivery
// trace plus closing network stats.
func runHookTrace(t *testing.T, seed int64, install func(n *Network) error) (string, error) {
	t.Helper()
	eng := sim.NewEngine(seed)
	n := New(eng)
	s := []ServerID{n.AddServer(), n.AddServer(), n.AddServer()}
	lan := LinkConfig{Class: Cheap, Delay: 2 * time.Millisecond, Jitter: 2 * time.Millisecond, LossProb: 0.05, DupProb: 0.02}
	wan := LinkConfig{Class: Expensive, Delay: 10 * time.Millisecond, Jitter: 5 * time.Millisecond, LossProb: 0.10}
	for _, pair := range [][2]ServerID{{s[0], s[1]}, {s[1], s[2]}, {s[0], s[2]}} {
		cfg := lan
		if pair[0] == s[0] && pair[1] == s[2] {
			cfg = wan
		}
		if _, err := n.AddLink(pair[0], pair[1], cfg); err != nil {
			return "", err
		}
	}
	const hosts = 6
	var trace strings.Builder
	for h := HostID(1); h <= hosts; h++ {
		if err := n.AttachHost(h, s[int(h-1)%len(s)], LinkConfig{Class: Cheap, Delay: time.Millisecond, Jitter: time.Millisecond}); err != nil {
			return "", err
		}
		h := h
		if err := n.Handle(h, func(at time.Duration, env Envelope) {
			fmt.Fprintf(&trace, "%v %d->%d(%d) cost=%t %v\n", at, env.From, env.To, h, env.CostBit, env.Payload)
		}); err != nil {
			return "", err
		}
	}
	if err := install(n); err != nil {
		return "", err
	}
	for round := 0; round < 5; round++ {
		for from := HostID(1); from <= hosts; from++ {
			round, from := round, from
			to := from%hosts + 1
			eng.Schedule(time.Duration(round*3+int(from))*time.Millisecond, func() {
				if err := n.Send(from, to, fmt.Sprintf("m%d-%d", from, round)); err != nil {
					t.Errorf("Send(%d→%d): %v", from, to, err)
				}
			})
		}
	}
	if err := eng.RunUntilIdle(); err != nil {
		return "", err
	}
	st := n.Stats()
	fmt.Fprintf(&trace, "stats sends=%d delivered=%d lost=%d dup=%d\n",
		st.HostSends, st.Delivered, st.Lost, st.Duplicated)
	return trace.String(), nil
}
