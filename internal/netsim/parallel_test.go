package netsim

import (
	"testing"
	"time"

	"rbcast/internal/sim"
)

// Regression test: when two parallel links of different classes join the
// same pair of servers (a cheap path repaired next to an old expensive
// link), forwarding must use the cheap one — otherwise messages carry a
// spurious cost bit and protocol hosts never merge their cluster views.
func TestParallelLinksPreferCheap(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	s1, s2 := n.AddServer(), n.AddServer()
	expLink, err := n.AddLink(s1, s2, LinkConfig{Class: Expensive, Jitter: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(1, s1, LinkConfig{Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(2, s2, LinkConfig{Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	var got []Envelope
	if err := n.Handle(2, func(_ time.Duration, env Envelope) { got = append(got, env) }); err != nil {
		t.Fatal(err)
	}

	// Only the expensive link exists: the cost bit must be set.
	if err := n.Send(1, 2, "a"); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].CostBit {
		t.Fatalf("expected one expensive delivery, got %+v", got)
	}

	// A cheap parallel link appears (higher link ID). Both routing and
	// forwarding must now prefer it.
	cheapLink, err := n.AddLink(s1, s2, LinkConfig{Class: Cheap, Jitter: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Send(1, 2, "b"); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("second message not delivered")
	}
	if got[1].CostBit {
		t.Error("message crossed the expensive parallel link despite a cheap one existing")
	}
	if n.Stats().PerLink[cheapLink] == 0 {
		t.Error("cheap parallel link unused")
	}

	// Cheap link fails: traffic falls back to the expensive one.
	if err := n.SetLinkUp(cheapLink, false); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(1, 2, "c"); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !got[2].CostBit {
		t.Fatalf("fallback to expensive link failed: %+v", got)
	}
	if n.Stats().PerLink[expLink] != 2 {
		t.Errorf("expensive link used %d times, want 2", n.Stats().PerLink[expLink])
	}
}
