package netsim

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"rbcast/internal/sim"
)

// Regression test: when two parallel links of different classes join the
// same pair of servers (a cheap path repaired next to an old expensive
// link), forwarding must use the cheap one — otherwise messages carry a
// spurious cost bit and protocol hosts never merge their cluster views.
func TestParallelLinksPreferCheap(t *testing.T) {
	eng := sim.NewEngine(1)
	n := New(eng)
	s1, s2 := n.AddServer(), n.AddServer()
	expLink, err := n.AddLink(s1, s2, LinkConfig{Class: Expensive, Jitter: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(1, s1, LinkConfig{Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(2, s2, LinkConfig{Jitter: 0}); err != nil {
		t.Fatal(err)
	}
	var got []Envelope
	if err := n.Handle(2, func(_ time.Duration, env Envelope) { got = append(got, env) }); err != nil {
		t.Fatal(err)
	}

	// Only the expensive link exists: the cost bit must be set.
	if err := n.Send(1, 2, "a"); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || !got[0].CostBit {
		t.Fatalf("expected one expensive delivery, got %+v", got)
	}

	// A cheap parallel link appears (higher link ID). Both routing and
	// forwarding must now prefer it.
	cheapLink, err := n.AddLink(s1, s2, LinkConfig{Class: Cheap, Jitter: 0})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Send(1, 2, "b"); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("second message not delivered")
	}
	if got[1].CostBit {
		t.Error("message crossed the expensive parallel link despite a cheap one existing")
	}
	if n.Stats().PerLink[cheapLink] == 0 {
		t.Error("cheap parallel link unused")
	}

	// Cheap link fails: traffic falls back to the expensive one.
	if err := n.SetLinkUp(cheapLink, false); err != nil {
		t.Fatal(err)
	}
	if err := n.Send(1, 2, "c"); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || !got[2].CostBit {
		t.Fatalf("fallback to expensive link failed: %+v", got)
	}
	if n.Stats().PerLink[expLink] != 2 {
		t.Errorf("expensive link used %d times, want 2", n.Stats().PerLink[expLink])
	}
}

// TestTransmitHookTraceIdentity pins the property the adversary layer
// is built on: installing a transmit hook — even one that drops,
// rewrites, or fans out traffic — costs nothing in determinism. The
// same seed must yield a byte-identical delivery trace across runs for
// every hook shape, because soak replay and shrinking depend on it.
func TestTransmitHookTraceIdentity(t *testing.T) {
	cases := []struct {
		name    string
		install func(n *Network) error
	}{
		{"no-hook", func(n *Network) error { return nil }},
		{"silence", func(n *Network) error {
			// Host 2 silently withholds everything addressed to host 4.
			return n.SetTransmitHook(2, func(to HostID, payload any) []Outbound {
				if to == 4 {
					return nil
				}
				return []Outbound{{To: to, Payload: payload}}
			})
		}},
		{"equivocate", func(n *Network) error {
			// Host 2 tells every destination a different story.
			return n.SetTransmitHook(2, func(to HostID, payload any) []Outbound {
				return []Outbound{{To: to, Payload: fmt.Sprintf("forged-for-%d:%v", to, payload)}}
			})
		}},
		{"forge-cost-fanout", func(n *Network) error {
			// Host 5 duplicates each send to two fixed peers and lies
			// about the path class on the copies.
			return n.SetTransmitHook(5, func(to HostID, payload any) []Outbound {
				return []Outbound{
					{To: to, Payload: payload},
					{To: 1, Payload: payload, ForceCostBit: true},
					{To: 3, Payload: payload, ForceCostBit: true},
				}
			})
		}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a, err := runHookTrace(t, 7, tc.install)
			if err != nil {
				t.Fatal(err)
			}
			b, err := runHookTrace(t, 7, tc.install)
			if err != nil {
				t.Fatal(err)
			}
			if a == "" {
				t.Fatal("empty delivery trace; the comparison is vacuous")
			}
			if a != b {
				t.Fatalf("same seed, diverging traces:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
			}
			other, err := runHookTrace(t, 8, tc.install)
			if err != nil {
				t.Fatal(err)
			}
			if a == other {
				t.Fatal("different seeds produced identical traces; jitter/loss draws are not live")
			}
		})
	}
}

// runHookTrace drives fixed traffic over a lossy, jittery three-server
// topology with the given hook installed and returns the full delivery
// trace plus closing network stats.
func runHookTrace(t *testing.T, seed int64, install func(n *Network) error) (string, error) {
	t.Helper()
	eng := sim.NewEngine(seed)
	n := New(eng)
	s := []ServerID{n.AddServer(), n.AddServer(), n.AddServer()}
	lan := LinkConfig{Class: Cheap, Delay: 2 * time.Millisecond, Jitter: 2 * time.Millisecond, LossProb: 0.05, DupProb: 0.02}
	wan := LinkConfig{Class: Expensive, Delay: 10 * time.Millisecond, Jitter: 5 * time.Millisecond, LossProb: 0.10}
	for _, pair := range [][2]ServerID{{s[0], s[1]}, {s[1], s[2]}, {s[0], s[2]}} {
		cfg := lan
		if pair[0] == s[0] && pair[1] == s[2] {
			cfg = wan
		}
		if _, err := n.AddLink(pair[0], pair[1], cfg); err != nil {
			return "", err
		}
	}
	const hosts = 6
	var trace strings.Builder
	for h := HostID(1); h <= hosts; h++ {
		if err := n.AttachHost(h, s[int(h-1)%len(s)], LinkConfig{Class: Cheap, Delay: time.Millisecond, Jitter: time.Millisecond}); err != nil {
			return "", err
		}
		h := h
		if err := n.Handle(h, func(at time.Duration, env Envelope) {
			fmt.Fprintf(&trace, "%v %d->%d(%d) cost=%t %v\n", at, env.From, env.To, h, env.CostBit, env.Payload)
		}); err != nil {
			return "", err
		}
	}
	if err := install(n); err != nil {
		return "", err
	}
	for round := 0; round < 5; round++ {
		for from := HostID(1); from <= hosts; from++ {
			round, from := round, from
			to := from%hosts + 1
			eng.Schedule(time.Duration(round*3+int(from))*time.Millisecond, func() {
				if err := n.Send(from, to, fmt.Sprintf("m%d-%d", from, round)); err != nil {
					t.Errorf("Send(%d→%d): %v", from, to, err)
				}
			})
		}
	}
	if err := eng.RunUntilIdle(); err != nil {
		return "", err
	}
	st := n.Stats()
	fmt.Fprintf(&trace, "stats sends=%d delivered=%d lost=%d dup=%d\n",
		st.HostSends, st.Delivered, st.Lost, st.Duplicated)
	return trace.String(), nil
}

// runShardedNetTrace drives clustered traffic — lossy, jittery links,
// intra- and inter-cluster sends, plus a mid-run link failure and repair
// injected from the global context — on the sharded engine with the
// given worker count, and returns the complete delivery trace.
func runShardedNetTrace(t *testing.T, seed int64, workers int) string {
	t.Helper()
	s := sim.NewSharded(seed, workers)
	n := New(s)

	// Four clusters of three servers each: cheap chains inside, an
	// expensive ring (plus one chord) between cluster heads.
	const clusters, perCluster = 4, 3
	heads := make([]ServerID, 0, clusters)
	var allHosts []HostID
	lan := LinkConfig{Class: Cheap, Delay: 2 * time.Millisecond, Jitter: 2 * time.Millisecond, LossProb: 0.05, DupProb: 0.02}
	hostLink := LinkConfig{Class: Cheap, Delay: time.Millisecond, Jitter: time.Millisecond}
	wan := LinkConfig{Class: Expensive, Delay: 25 * time.Millisecond, Jitter: 10 * time.Millisecond, LossProb: 0.10}
	next := HostID(1)
	for c := 0; c < clusters; c++ {
		var srv []ServerID
		for i := 0; i < perCluster; i++ {
			srv = append(srv, n.AddServer())
		}
		for i := 1; i < perCluster; i++ {
			if _, err := n.AddLink(srv[i-1], srv[i], lan); err != nil {
				t.Fatal(err)
			}
		}
		heads = append(heads, srv[0])
		for i := 0; i < perCluster; i++ {
			if err := n.AttachHost(next, srv[i], hostLink); err != nil {
				t.Fatal(err)
			}
			allHosts = append(allHosts, next)
			next++
		}
	}
	var wanLinks []LinkID
	for c := 0; c < clusters; c++ {
		id, err := n.AddLink(heads[c], heads[(c+1)%clusters], wan)
		if err != nil {
			t.Fatal(err)
		}
		wanLinks = append(wanLinks, id)
	}
	if _, err := n.AddLink(heads[0], heads[2], wan); err != nil {
		t.Fatal(err)
	}

	plan := n.ComputeShardPlan()
	if plan.Lanes != clusters {
		t.Fatalf("plan has %d lanes, want %d", plan.Lanes, clusters)
	}
	if plan.Lookahead != wan.Delay {
		t.Fatalf("plan lookahead %v, want %v", plan.Lookahead, wan.Delay)
	}
	s.SetLanes(plan.Weights, plan.Lookahead)
	if err := n.ApplyShardPlan(plan); err != nil {
		t.Fatal(err)
	}

	// Per-lane delivery traces: a host's handler runs on its own lane.
	traces := make([]*strings.Builder, plan.Lanes)
	for i := range traces {
		traces[i] = &strings.Builder{}
	}
	for _, h := range allHosts {
		h := h
		lane := n.LaneOfHost(h)
		if err := n.Handle(h, func(at time.Duration, env Envelope) {
			fmt.Fprintf(traces[lane], "%v %d->%d cost=%t hops=%d %v\n", at, env.From, env.To, env.CostBit, env.Hops, env.Payload)
		}); err != nil {
			t.Fatal(err)
		}
	}

	// Workload: every host ticks on its lane, alternating an
	// intra-cluster send with an inter-cluster one.
	for _, h := range allHosts {
		h := h
		lane := n.LaneOfHost(h)
		round := 0
		s.EveryOn(lane, 5*time.Millisecond, func() {
			round++
			var to HostID
			if round%2 == 0 {
				// Neighbor in the same cluster.
				base := (int(h-1)/perCluster)*perCluster + 1
				to = HostID(base + (int(h-1)+1)%perCluster)
			} else {
				to = HostID((int(h-1)+perCluster)%len(allHosts) + 1)
			}
			if to == h {
				return
			}
			if err := n.Send(h, to, fmt.Sprintf("m%d-%d", h, round)); err != nil {
				t.Errorf("Send(%d->%d): %v", h, to, err)
			}
		})
	}

	// Global-context fault injection: a WAN link fails mid-run and
	// recovers, exercising barrier-time topology mutation and per-lane
	// cache invalidation.
	s.Schedule(60*time.Millisecond, func() {
		if err := n.SetLinkUp(wanLinks[0], false); err != nil {
			t.Error(err)
		}
	})
	s.Schedule(140*time.Millisecond, func() {
		if err := n.SetLinkUp(wanLinks[0], true); err != nil {
			t.Error(err)
		}
	})

	if err := s.Run(250 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for lane, tr := range traces {
		fmt.Fprintf(&b, "== lane %d ==\n%s", lane, tr.String())
	}
	st := n.Stats()
	fmt.Fprintf(&b, "stats sends=%d delivered=%d inter=%d lost=%d dup=%d downdrop=%d noroute=%d\n",
		st.HostSends, st.Delivered, st.InterClusterSends, st.Lost, st.Duplicated, st.DroppedLinkDown, st.DroppedNoRoute)
	return b.String()
}

// TestShardTraceIdentity pins the tentpole invariant at the network
// layer: a seeded trace is bit-identical at any shard (worker) count,
// because the lane partition derives from the topology and workers are
// pure executors. Runs with loss, duplication, jitter, cross-cluster
// routing, and mid-run failures all active.
func TestShardTraceIdentity(t *testing.T) {
	for _, seed := range []int64{3, 5, 9} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ref := runShardedNetTrace(t, seed, 1)
			if !strings.Contains(ref, "cost=true") {
				t.Fatal("no inter-cluster deliveries; the identity check is vacuous")
			}
			for _, workers := range []int{2, 4, 8} {
				got := runShardedNetTrace(t, seed, workers)
				if got != ref {
					t.Fatalf("seed %d: workers=%d trace diverged from workers=1 (len %d vs %d)",
						seed, workers, len(got), len(ref))
				}
			}
		})
	}
}

// TestShardPlanAllCheapSingleLane: a topology whose servers are all
// cheaply connected is one lane — correct (no parallelism available,
// no lookahead constraint) rather than an error.
func TestShardPlanAllCheapSingleLane(t *testing.T) {
	s := sim.NewSharded(1, 4)
	n := New(s)
	a, b, c := n.AddServer(), n.AddServer(), n.AddServer()
	for _, pair := range [][2]ServerID{{a, b}, {b, c}} {
		if _, err := n.AddLink(pair[0], pair[1], LinkConfig{Class: Cheap}); err != nil {
			t.Fatal(err)
		}
	}
	for h := HostID(1); h <= 3; h++ {
		if err := n.AttachHost(h, []ServerID{a, b, c}[h-1], LinkConfig{}); err != nil {
			t.Fatal(err)
		}
	}
	plan := n.ComputeShardPlan()
	if plan.Lanes != 1 {
		t.Fatalf("all-cheap topology computed %d lanes, want 1", plan.Lanes)
	}
	if plan.Lookahead != 0 {
		t.Errorf("lookahead %v with no cross-lane links, want 0", plan.Lookahead)
	}
	if plan.Weights[0] != 3 {
		t.Errorf("weights %v, want [3]", plan.Weights)
	}
}

// TestShardPlanFreezesTopology: growing the topology after the plan is
// applied must fail loudly — the partition would silently misroute.
func TestShardPlanFreezesTopology(t *testing.T) {
	s := sim.NewSharded(1, 2)
	n := New(s)
	a, b := n.AddServer(), n.AddServer()
	if _, err := n.AddLink(a, b, LinkConfig{Class: Expensive}); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(1, a, LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	if err := n.AttachHost(2, b, LinkConfig{}); err != nil {
		t.Fatal(err)
	}
	plan := n.ComputeShardPlan()
	s.SetLanes(plan.Weights, plan.Lookahead)
	if err := n.ApplyShardPlan(plan); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddServer after ApplyShardPlan did not panic")
		}
	}()
	n.AddServer()
}
