package sim

import (
	"testing"
	"time"
)

// The event queue's //rblint:hotpath guarantee, pinned dynamically: once
// the heap and the cancel-cell free list have grown to working size, a
// schedule/run cycle performs no heap allocation — timer-churn-heavy
// soaks stay garbage-free.

func TestScheduleRunZeroAllocs(t *testing.T) {
	e := NewEngine(1)
	ran := 0
	fn := Event(func() { ran++ })
	// Warm the heap and the free list past the working set.
	for i := 0; i < 64; i++ {
		e.Schedule(time.Duration(i)*time.Microsecond, fn)
	}
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	var runErr error
	allocs := testing.AllocsPerRun(200, func() {
		for i := 0; i < 32; i++ {
			e.Schedule(time.Duration(i)*time.Microsecond, fn)
		}
		runErr = e.RunUntilIdle()
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if ran == 0 {
		t.Fatal("no events ran")
	}
	if allocs != 0 {
		t.Errorf("schedule/run cycle: %.1f allocs/op, want 0", allocs)
	}
}

func TestCancelCompactZeroAllocs(t *testing.T) {
	e := NewEngine(1)
	fn := Event(func() {})
	timers := make([]Timer, 0, 256)
	// Warm: drive one full schedule/cancel/compact/run cycle so the
	// heap, free list, and timer slice reach steady capacity.
	cycle := func() {
		timers = timers[:0]
		for i := 0; i < 200; i++ {
			timers = append(timers, e.Schedule(time.Duration(i)*time.Microsecond, fn))
		}
		// Cancel enough to cross the compaction threshold (canceled >
		// half of a heap of at least compactMin entries).
		for _, tm := range timers[:150] {
			tm.Cancel()
		}
		if err := e.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
	}
	cycle()
	allocs := testing.AllocsPerRun(100, cycle)
	if allocs != 0 {
		t.Errorf("schedule/cancel/compact cycle: %.1f allocs/op, want 0", allocs)
	}
}

// The cross-lane mailbox contract: once rows and destination heaps have
// reached working capacity, an enqueue (ScheduleCross) / drain / run
// cycle performs no heap allocation — the barrier path of the sharded
// engine stays garbage-free no matter how much traffic crosses lanes.
func TestMailboxEnqueueDrainZeroAllocs(t *testing.T) {
	s := NewSharded(1, 1)
	s.SetLanes([]int{1, 1}, time.Millisecond)
	ran := 0
	fn := Event(func() { ran++ })
	cycle := func() {
		for i := 0; i < 32; i++ {
			s.ScheduleCross(0, 1, time.Duration(i+1)*time.Millisecond, fn)
			s.ScheduleCross(1, 0, time.Duration(i+1)*time.Millisecond, fn)
			s.ScheduleCross(0, 0, time.Duration(i)*time.Microsecond, fn)
		}
		if err := s.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
	}
	// Warm rows, heaps, and the lane engines past the working set.
	for i := 0; i < 4; i++ {
		cycle()
	}
	allocs := testing.AllocsPerRun(200, cycle)
	if ran == 0 {
		t.Fatal("no events ran")
	}
	if allocs != 0 {
		t.Errorf("enqueue/drain/run cycle: %.1f allocs/op, want 0", allocs)
	}
}
