package sim

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var got []int
	e.Schedule(3*time.Millisecond, func() { got = append(got, 3) })
	e.Schedule(1*time.Millisecond, func() { got = append(got, 1) })
	e.Schedule(2*time.Millisecond, func() { got = append(got, 2) })
	if err := e.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { got = append(got, i) })
	}
	if err := e.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-instant events not FIFO: %v", got)
		}
	}
}

func TestClockAdvances(t *testing.T) {
	e := NewEngine(1)
	var at time.Duration
	e.Schedule(5*time.Millisecond, func() { at = e.Now() })
	if err := e.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 5*time.Millisecond {
		t.Errorf("event ran at %v, want 5ms", at)
	}
	if e.Now() != time.Second {
		t.Errorf("Now() = %v after Run(1s), want 1s", e.Now())
	}
}

func TestRunBoundary(t *testing.T) {
	e := NewEngine(1)
	ran := map[string]bool{}
	e.Schedule(10*time.Millisecond, func() { ran["at"] = true })
	e.Schedule(10*time.Millisecond+1, func() { ran["after"] = true })
	if err := e.Run(10 * time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !ran["at"] {
		t.Error("event exactly at boundary did not run")
	}
	if ran["after"] {
		t.Error("event after boundary ran")
	}
	// Second Run picks up the remaining event.
	if err := e.Run(20 * time.Millisecond); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	if !ran["after"] {
		t.Error("remaining event did not run on second Run")
	}
}

func TestRunBackwardsRejected(t *testing.T) {
	e := NewEngine(1)
	if err := e.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if err := e.Run(time.Millisecond); err == nil {
		t.Fatal("Run into the past succeeded, want error")
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.Schedule(-time.Second, func() { ran = true })
	if err := e.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if !ran {
		t.Error("negative-delay event did not run")
	}
	if e.Now() != 0 {
		t.Errorf("clock moved to %v, want 0", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine(1)
	ran := false
	tm := e.Schedule(time.Millisecond, func() { ran = true })
	tm.Cancel()
	if err := e.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if ran {
		t.Error("canceled event ran")
	}
	// Double cancel and zero-timer cancel are no-ops.
	tm.Cancel()
	Timer{}.Cancel()
}

func TestCancelFromEvent(t *testing.T) {
	e := NewEngine(1)
	ran := false
	var victim Timer
	e.Schedule(time.Millisecond, func() { victim.Cancel() })
	victim = e.Schedule(2*time.Millisecond, func() { ran = true })
	if err := e.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if ran {
		t.Error("event canceled by earlier event still ran")
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count == 5 {
			e.Stop()
		}
		e.Schedule(time.Millisecond, tick)
	}
	e.Schedule(time.Millisecond, tick)
	if err := e.Run(time.Hour); err != ErrStopped {
		t.Fatalf("Run returned %v, want ErrStopped", err)
	}
	if count != 5 {
		t.Errorf("count = %d, want 5", count)
	}
	// Engine is usable again after Stop.
	if err := e.Run(e.Now() + 3*time.Millisecond); err != nil {
		t.Fatalf("Run after Stop: %v", err)
	}
	if count < 6 {
		t.Errorf("count = %d after resume, want > 5", count)
	}
}

func TestReschedulingChain(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			e.Schedule(time.Millisecond, tick)
		}
	}
	e.Schedule(0, tick)
	if err := e.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if count != 100 {
		t.Errorf("count = %d, want 100", count)
	}
	if e.Now() != 99*time.Millisecond {
		t.Errorf("Now() = %v, want 99ms", e.Now())
	}
	if e.EventsRun() != 100 {
		t.Errorf("EventsRun() = %d, want 100", e.EventsRun())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		e := NewEngine(42)
		var got []int
		for i := 0; i < 50; i++ {
			i := i
			d := time.Duration(e.Rand().Intn(100)) * time.Millisecond
			e.Schedule(d, func() { got = append(got, i) })
		}
		if err := e.RunUntilIdle(); err != nil {
			t.Fatalf("RunUntilIdle: %v", err)
		}
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a, b)
		}
	}
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Schedule(nil) did not panic")
		}
	}()
	NewEngine(1).Schedule(0, nil)
}

func TestEvery(t *testing.T) {
	e := NewEngine(1)
	count := 0
	var tm Timer
	tm = e.Every(10*time.Millisecond, func() {
		count++
		if count == 5 {
			tm.Cancel()
		}
	})
	if err := e.Run(time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 5 {
		t.Errorf("count = %d, want 5 (canceled after fifth firing)", count)
	}
	if e.Pending() != 0 {
		// One canceled placeholder may linger until popped; drain fully.
		if err := e.RunUntilIdle(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEveryFirstFiringAfterOnePeriod(t *testing.T) {
	e := NewEngine(1)
	var at time.Duration
	tm := e.Every(25*time.Millisecond, func() {
		if at == 0 {
			at = e.Now()
		}
	})
	defer tm.Cancel()
	if err := e.Run(100 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if at != 25*time.Millisecond {
		t.Errorf("first firing at %v, want 25ms", at)
	}
}

func TestEveryValidation(t *testing.T) {
	e := NewEngine(1)
	for _, fn := range []func(){
		func() { e.Every(0, func() {}) },
		func() { e.Every(time.Second, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Every accepted invalid arguments")
				}
			}()
			fn()
		}()
	}
}

func TestPending(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(time.Millisecond, func() {})
	e.Schedule(time.Millisecond, func() {})
	if got := e.Pending(); got != 2 {
		t.Errorf("Pending() = %d, want 2", got)
	}
	if err := e.RunUntilIdle(); err != nil {
		t.Fatalf("RunUntilIdle: %v", err)
	}
	if got := e.Pending(); got != 0 {
		t.Errorf("Pending() = %d after drain, want 0", got)
	}
}

// TestCompactionAfterMassCancel verifies that canceling most of a large
// timer burst shrinks the heap immediately instead of leaving the
// canceled entries queued until their deadlines pop — the unbounded
// growth long backoff-heavy soaks used to exhibit.
func TestCompactionAfterMassCancel(t *testing.T) {
	e := NewEngine(1)
	const n = 1024
	timers := make([]Timer, 0, n)
	for i := 0; i < n; i++ {
		timers = append(timers, e.Schedule(time.Duration(i+1)*time.Second, func() {}))
	}
	live := 0
	for i, tm := range timers {
		if i%16 == 0 {
			live++
			continue
		}
		tm.Cancel()
	}
	if got := e.Pending(); got >= n/2 {
		t.Fatalf("Pending() = %d after mass cancel, want < %d (heap did not compact)", got, n/2)
	}
	if got := e.Pending(); got < live {
		t.Fatalf("Pending() = %d, want >= %d live events", got, live)
	}
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if got := int(e.EventsRun()); got != live {
		t.Fatalf("EventsRun() = %d, want %d (only live events fire)", got, live)
	}
}

// TestCancelOrderPreserved checks that compaction does not disturb the
// (time, insertion order) firing sequence of the surviving events.
func TestCancelOrderPreserved(t *testing.T) {
	e := NewEngine(1)
	const n = 512
	var got []int
	timers := make([]Timer, 0, n)
	for i := 0; i < n; i++ {
		i := i
		// Colliding deadlines (i/4) exercise the seq tie-break.
		timers = append(timers, e.Schedule(time.Duration(i/4)*time.Millisecond, func() {
			got = append(got, i)
		}))
	}
	for i, tm := range timers {
		if i%3 != 0 {
			tm.Cancel()
		}
	}
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	var want []int
	for i := 0; i < n; i += 3 {
		want = append(want, i)
	}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("firing order[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

// TestCancelAfterFireIsNoOp pins the recycled-cell semantics: a Timer
// whose event already fired (and whose cell may since have been reused
// by a new event) must not cancel anything.
func TestCancelAfterFireIsNoOp(t *testing.T) {
	e := NewEngine(1)
	fired1 := false
	t1 := e.Schedule(time.Millisecond, func() { fired1 = true })
	if err := e.Run(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !fired1 {
		t.Fatal("first event did not fire")
	}
	// The second Schedule reuses the first event's cell from the free
	// list; the stale timer must not be able to cancel it.
	fired2 := false
	e.Schedule(time.Millisecond, func() { fired2 = true })
	t1.Cancel()
	if err := e.Run(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !fired2 {
		t.Fatal("stale Timer.Cancel killed an unrelated event")
	}
}

// Regression: a Stop that lands outside a run (or races the end of one)
// must be honored by the next Run before any event executes — and must
// not advance the clock to until. Previously a pending Stop with an
// empty due-window was silently swallowed while the clock jumped.
func TestStopPendingLeavesClockUntouched(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(5*time.Millisecond, func() { fired = true })
	e.Stop()
	if err := e.Run(10 * time.Millisecond); err != ErrStopped {
		t.Fatalf("Run with pending Stop returned %v, want ErrStopped", err)
	}
	if e.Now() != 0 {
		t.Errorf("clock advanced to %v on the ErrStopped path, want 0", e.Now())
	}
	if fired {
		t.Error("event ran despite pending Stop")
	}
	// The Stop is consumed: the next Run proceeds normally.
	if err := e.Run(10 * time.Millisecond); err != nil {
		t.Fatalf("Run after consumed Stop: %v", err)
	}
	if !fired {
		t.Error("event did not run after the Stop was consumed")
	}
	if e.Now() != 10*time.Millisecond {
		t.Errorf("clock = %v after clean Run, want 10ms", e.Now())
	}
}

func TestStopPendingRunUntilIdle(t *testing.T) {
	e := NewEngine(1)
	fired := false
	e.Schedule(time.Millisecond, func() { fired = true })
	e.Stop()
	if err := e.RunUntilIdle(); err != ErrStopped {
		t.Fatalf("RunUntilIdle with pending Stop returned %v, want ErrStopped", err)
	}
	if fired || e.Now() != 0 {
		t.Errorf("fired=%t now=%v after ErrStopped, want false/0", fired, e.Now())
	}
	if err := e.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("event did not run after the Stop was consumed")
	}
}

// A mid-run Stop leaves the clock at the stopping event's instant, and
// the following Run must still not teleport the clock past events that
// remain scheduled.
func TestStopMidRunClockStaysAtEvent(t *testing.T) {
	e := NewEngine(1)
	var later bool
	e.Schedule(3*time.Millisecond, func() { e.Stop() })
	e.Schedule(7*time.Millisecond, func() { later = true })
	if err := e.Run(time.Second); err != ErrStopped {
		t.Fatalf("Run returned %v, want ErrStopped", err)
	}
	if e.Now() != 3*time.Millisecond {
		t.Errorf("clock = %v at Stop, want 3ms", e.Now())
	}
	if err := e.Run(time.Second); err != nil {
		t.Fatal(err)
	}
	if !later {
		t.Error("remaining event lost after mid-run Stop")
	}
}
