package sim

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"sync/atomic"
	"time"

	"rbcast/internal/detrand"
)

// Sharded is a conservative parallel discrete-event engine. Work is
// partitioned into lanes — independently clocked event queues, each a
// full sequential Engine with its own 4-ary heap and its own seeded
// detrand stream derived as hash(seed, lane) — and lanes are executed by
// a pool of worker goroutines between lockstep epoch barriers.
//
// The synchronization protocol is classic conservative lookahead: if
// every cross-lane interaction carries a delay of at least δ (the
// minimum cross-lane link latency, supplied to SetLanes), then a lane
// executing events in the window [T, T+δ) can never receive an event
// dated inside that window from another lane. Each epoch therefore runs
// every lane independently up to the barrier, with cross-lane events
// accumulating in per-lane-pair mailboxes that the coordinator drains —
// in deterministic (destination, source) lane order — while the lanes
// are parked at the barrier.
//
// Determinism contract: the trace of a seeded run depends only on the
// seed and the lane partition — never on the worker count. The partition
// is derived from the topology (netsim's ShardPlan), so running the same
// scenario with 1, 2, 4, or 8 workers yields bit-identical traces; the
// worker count is purely a throughput knob. (A sharded run is *not*
// byte-identical to a sequential-Engine run of the same seed: lanes draw
// from per-lane PRNG streams, where the sequential engine has a single
// stream. The two are distinct, individually reproducible executions.)
//
// Events scheduled through the global context (Schedule, Every) run at
// epoch barriers with every lane parked, and see their exact scheduled
// time: the coordinator caps each barrier at the next global event's
// instant, quiesces the lanes there, and only then runs the event. This
// makes the global queue the safe home for topology mutations, invariant
// probes, and monitors — they observe and mutate a fully synchronized
// simulation, exactly as they would on the sequential Engine.
type Sharded struct {
	seed    int64
	workers int // requested worker count (the Shards knob)

	global *Engine // coordinator-context clock, queue, and PRNG
	lanes  []*shardLane
	epoch  time.Duration // conservative lookahead δ

	// assign maps each live worker to the lanes it executes; built once
	// in SetLanes by greedy weight balancing. len(assign) <= workers and
	// every row is non-empty.
	assign [][]*shardLane

	// jobs/done are the per-Run worker pool channels; nil while no run
	// is in flight or when a single worker executes lanes inline.
	jobs []chan epochJob
	done chan struct{}

	// running is true while lane events are executing; guards the
	// global- and lane-scheduling entry points against misuse from
	// inside lane events. Written by the coordinator only; the channel
	// send/receive pair around each epoch orders any worker-side read.
	running bool

	stopped atomic.Bool
}

// shardLane is one lane: a private sequential engine plus its outgoing
// cross-lane mailboxes (one row per destination lane). During an epoch a
// lane is touched only by the single worker executing it; between
// epochs, only by the coordinator. The epoch-job channel handoff is the
// happens-before edge between the two.
type shardLane struct {
	id  int
	eng *Engine
	out [][]crossEvent // indexed by destination lane
}

// crossEvent is one mailbox entry: an event bound for another lane,
// stamped with its absolute virtual instant.
type crossEvent struct {
	at time.Duration
	fn Event
}

// epochJob instructs a worker to run its lanes' events through limit
// (inclusive) and park their clocks at barrier.
type epochJob struct {
	lanes   []*shardLane
	limit   time.Duration
	barrier time.Duration
	done    chan<- struct{}
}

// noLookahead is the epoch length used when the partition reports no
// cross-lane links at all: effectively unbounded, so barriers fall only
// on global events and run horizons.
const noLookahead = time.Duration(1) << 50

// laneSeed derives lane's PRNG seed from the run seed, mixing both
// through FNV-1a so neighboring lanes get unrelated streams.
func laneSeed(seed int64, lane int) int64 {
	h := fnv.New64a()
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], uint64(seed))
	binary.LittleEndian.PutUint64(buf[8:], uint64(lane))
	h.Write(buf[:])
	return int64(h.Sum64())
}

// NewSharded returns a sharded engine with the given run seed and worker
// count. It starts with a single lane and no lookahead bound; call
// SetLanes (typically via netsim's shard plan) before scheduling lane
// events.
func NewSharded(seed int64, workers int) *Sharded {
	if workers < 1 {
		workers = 1
	}
	s := &Sharded{seed: seed, workers: workers, global: NewEngine(seed)}
	s.SetLanes([]int{1}, 0)
	return s
}

// SetLanes partitions the engine into len(weights) lanes and fixes the
// conservative lookahead. weights biases the greedy lane→worker
// assignment (typically hosts per lane); lookahead is the minimum delay
// any cross-lane ScheduleCross will carry (≤ 0 means no bound: barriers
// fall only on global events and run horizons).
//
// The lane partition is part of the determinism contract — it must be
// derived from the scenario (seed, topology), never from the worker
// count. SetLanes panics if the simulation has already started or lane
// events have been scheduled: re-partitioning would orphan them.
func (s *Sharded) SetLanes(weights []int, lookahead time.Duration) {
	if len(weights) == 0 {
		panic("sim: SetLanes requires at least one lane")
	}
	if s.global.ran > 0 || s.global.now > 0 {
		panic("sim: SetLanes after the simulation started")
	}
	for _, l := range s.lanes {
		if l.eng.Pending() > 0 || l.eng.seq > 0 || l.eng.ran > 0 {
			panic("sim: SetLanes after lane events were scheduled")
		}
	}
	s.lanes = make([]*shardLane, len(weights))
	for i := range s.lanes {
		s.lanes[i] = &shardLane{
			id:  i,
			eng: NewEngine(laneSeed(s.seed, i)),
			out: make([][]crossEvent, len(weights)),
		}
	}
	if lookahead <= 0 {
		lookahead = noLookahead
	}
	s.epoch = lookahead

	w := s.workers
	if w > len(weights) {
		w = len(weights)
	}
	s.assign = make([][]*shardLane, w)
	load := make([]int, w)
	order := make([]int, len(weights))
	for i := range order {
		order[i] = i
	}
	// Heaviest lanes first, ties by lane id: with at least as many lanes
	// as workers, greedy least-loaded placement gives every worker at
	// least one lane and balances the rest.
	sort.SliceStable(order, func(a, b int) bool {
		return weights[order[a]] > weights[order[b]]
	})
	for _, li := range order {
		best := 0
		for wi := 1; wi < w; wi++ {
			if load[wi] < load[best] {
				best = wi
			}
		}
		s.assign[best] = append(s.assign[best], s.lanes[li])
		wt := weights[li]
		if wt < 1 {
			wt = 1
		}
		load[best] += wt
	}
}

// Now returns the global virtual time: the last barrier reached.
func (s *Sharded) Now() time.Duration { return s.global.now }

// Rand returns the global-context random source. Lane events must use
// RandOf with their own lane instead.
func (s *Sharded) Rand() *detrand.Rand { return s.global.rng }

// Lanes reports the lane count.
func (s *Sharded) Lanes() int { return len(s.lanes) }

// NowOf returns lane's clock; between Run calls it equals Now.
func (s *Sharded) NowOf(lane int) time.Duration { return s.lanes[lane].eng.now }

// RandOf returns lane's private random source.
func (s *Sharded) RandOf(lane int) *detrand.Rand { return s.lanes[lane].eng.rng }

// EventsRun reports events executed across every lane plus the global
// queue.
func (s *Sharded) EventsRun() uint64 {
	n := s.global.ran
	for _, l := range s.lanes {
		n += l.eng.ran
	}
	return n
}

// Pending reports events scheduled anywhere: lane heaps, the global
// queue, and undrained mailbox entries.
func (s *Sharded) Pending() int {
	n := s.global.Pending()
	for _, l := range s.lanes {
		n += l.eng.Pending()
		for _, row := range l.out {
			n += len(row)
		}
	}
	return n
}

// Stop makes the in-flight Run/RunUntilIdle return ErrStopped at the
// next epoch barrier (or, with no run in flight, makes the next one
// return immediately). Safe to call from any event context, including
// lane events on worker goroutines.
func (s *Sharded) Stop() { s.stopped.Store(true) }

// checkParked panics when a scheduling entry point reserved for parked
// contexts is invoked from inside a lane event.
func (s *Sharded) checkParked(what string) {
	if s.running {
		panic("sim: " + what + " called from a lane event; lane events may only ScheduleCross")
	}
}

// Schedule runs fn after delay in the global context: at an epoch
// barrier with every lane parked. Must not be called from a lane event.
func (s *Sharded) Schedule(delay time.Duration, fn Event) Timer {
	s.checkParked("Schedule")
	return s.global.Schedule(delay, fn)
}

// Every schedules fn periodically in the global context. Must not be
// called from a lane event.
func (s *Sharded) Every(period time.Duration, fn Event) Timer {
	s.checkParked("Every")
	return s.global.Every(period, fn)
}

// ScheduleOn schedules fn on lane after delay of that lane's time. Must
// be called with lanes parked (before Run or between Run calls).
func (s *Sharded) ScheduleOn(lane int, delay time.Duration, fn Event) Timer {
	s.checkParked("ScheduleOn")
	return s.lanes[lane].eng.Schedule(delay, fn)
}

// EveryOn schedules fn periodically on lane. Must be called with lanes
// parked. The periodic chain itself reschedules on the lane's private
// queue, so ticks keep firing inside epochs without coordinator help.
func (s *Sharded) EveryOn(lane int, period time.Duration, fn Event) Timer {
	s.checkParked("EveryOn")
	return s.lanes[lane].eng.Every(period, fn)
}

// ScheduleCross schedules fn on lane to, delay after lane from's current
// time. It is the only scheduling call legal from inside a lane event
// (with from the executing lane). Same-lane calls land directly on the
// lane's heap with any delay; cross-lane calls append to the from→to
// mailbox and must carry delay ≥ the lookahead given to SetLanes — the
// event's instant then provably falls at or beyond the next barrier,
// where the coordinator drains it into to's heap. fn must be non-nil.
//
//rblint:hotpath every simulated cross-lane transmission enqueues here
func (s *Sharded) ScheduleCross(from, to int, delay time.Duration, fn Event) {
	if delay < 0 {
		delay = 0
	}
	l := s.lanes[from]
	if from == to {
		l.eng.pushCross(l.eng.now+delay, fn)
		return
	}
	l.out[to] = append(l.out[to], crossEvent{at: l.eng.now + delay, fn: fn})
}

// drain moves every mailbox entry into its destination lane's heap, in
// deterministic (destination, source) lane order — so same-instant
// arrivals from different source lanes always receive insertion-order
// tie-breaks in the same sequence, independent of worker count or wall
// timing. Runs on the coordinator with all lanes parked.
//
//rblint:hotpath cross-lane mailboxes drain at every epoch barrier
func (s *Sharded) drain() {
	for ti := range s.lanes {
		dst := s.lanes[ti].eng
		for si := range s.lanes {
			row := s.lanes[si].out[ti]
			for i := range row {
				dst.pushCross(row[i].at, row[i].fn)
				row[i].fn = nil
			}
			s.lanes[si].out[ti] = row[:0]
		}
	}
}

// run executes the lane's events with instants ≤ limit, then parks the
// lane clock at barrier. Called by exactly one goroutine per epoch.
func (l *shardLane) run(limit, barrier time.Duration) {
	e := l.eng
	for {
		ran, err := e.step(limit, true)
		if err != nil {
			// Lane engines are never stopped directly; clear defensively.
			e.stopped = false
		}
		if !ran {
			break
		}
	}
	if e.now < barrier {
		e.now = barrier
	}
}

// shardWorker is the body of one worker goroutine. It receives only a
// channel: every lane it touches arrives inside a job, so the job
// send/receive pair is the happens-before edge between coordinator and
// worker for that epoch's lane state.
func shardWorker(jobs <-chan epochJob) {
	for j := range jobs {
		for _, l := range j.lanes {
			l.run(j.limit, j.barrier)
		}
		j.done <- struct{}{}
	}
}

// startWorkers spawns the per-run worker pool and returns its shutdown
// function. With one worker (or one lane) the coordinator executes lanes
// inline and no goroutines spawn.
func (s *Sharded) startWorkers() func() {
	if len(s.assign) <= 1 {
		return func() {}
	}
	jobs := make([]chan epochJob, len(s.assign))
	for w := range jobs {
		jobs[w] = make(chan epochJob, 1)
		go shardWorker(jobs[w])
	}
	s.jobs = jobs
	s.done = make(chan struct{}, len(jobs))
	return func() {
		for _, ch := range jobs {
			close(ch)
		}
		s.jobs = nil
	}
}

// runSpan executes one epoch: every lane runs its events through limit
// and parks at barrier, in parallel when a worker pool is live.
func (s *Sharded) runSpan(limit, barrier time.Duration) {
	s.running = true
	if s.jobs == nil {
		for _, l := range s.lanes {
			l.run(limit, barrier)
		}
	} else {
		for w, ch := range s.jobs {
			ch <- epochJob{lanes: s.assign[w], limit: limit, barrier: barrier, done: s.done}
		}
		for range s.jobs {
			<-s.done
		}
	}
	s.running = false
}

// runGlobalDue executes global-queue events with instants ≤ t, then
// advances the global clock to t. Lanes are parked throughout. If Stop
// arrives mid-sequence the remaining due events stay queued for the next
// run, mirroring the sequential engine's return-after-in-flight-event
// behavior.
func (s *Sharded) runGlobalDue(t time.Duration) error {
	for !s.stopped.Load() {
		ran, err := s.global.step(t, true)
		if err != nil {
			s.global.stopped = false
			return err
		}
		if !ran {
			break
		}
	}
	if s.global.now < t {
		s.global.now = t
	}
	return nil
}

// parkLanes advances every lane clock that lags behind t. Called before
// returning to the caller so that, between runs, every lane clock equals
// the global clock — the contract ScheduleOn and netsim's parked-context
// sends rely on.
func (s *Sharded) parkLanes(t time.Duration) {
	for _, l := range s.lanes {
		if l.eng.now < t {
			l.eng.now = t
		}
	}
}

// minPendingLane reports the earliest instant scheduled on any lane
// heap. Mailboxes must already be drained.
func (s *Sharded) minPendingLane() (time.Duration, bool) {
	var min time.Duration
	ok := false
	for _, l := range s.lanes {
		if at, has := l.eng.peekMin(); has && (!ok || at < min) {
			min, ok = at, true
		}
	}
	return min, ok
}

// Run executes events until the virtual clock would pass until, then
// sets the clock to until. Events scheduled exactly at until do fire. It
// returns ErrStopped if Stop was called, honoring a Stop pending from
// outside the run before any event executes and leaving the clock
// untouched in that case.
func (s *Sharded) Run(until time.Duration) error {
	if s.stopped.CompareAndSwap(true, false) {
		return ErrStopped
	}
	if until < s.global.now {
		return fmt.Errorf("sim: Run until %v is before now %v", until, s.global.now)
	}
	stop := s.startWorkers()
	defer stop()
	s.drain()
	for {
		if err := s.runGlobalDue(s.global.now); err != nil {
			s.parkLanes(s.global.now)
			return err
		}
		s.drain()
		if s.stopped.CompareAndSwap(true, false) {
			s.parkLanes(s.global.now)
			return ErrStopped
		}
		if s.global.now >= until {
			// Final pass: lane events scheduled exactly at until fire,
			// including same-lane chains they spawn at the same instant.
			if m, ok := s.minPendingLane(); ok && m <= until {
				s.runSpan(until, until)
				s.drain()
				continue
			}
			s.parkLanes(until)
			return nil
		}
		barrier, limit := s.nextBarrier(until)
		s.runSpan(limit, barrier)
		s.drain()
		if s.global.now < barrier {
			s.global.now = barrier
		}
	}
}

// nextBarrier picks the next epoch boundary: one lookahead window past
// the next lane activity, capped at the next global event (so global
// events run at their exact instant with lanes quiesced there) and at
// the run horizon. The window is exclusive — limit is the last included
// instant — except when the barrier is the horizon itself, which Run's
// contract makes inclusive.
func (s *Sharded) nextBarrier(until time.Duration) (barrier, limit time.Duration) {
	base := s.global.now
	b := until
	if m, ok := s.minPendingLane(); ok {
		lo := m
		if lo < base {
			lo = base
		}
		if w := lo + s.epoch; w < b {
			b = w
		}
	}
	if g, ok := s.global.peekMin(); ok && g < b {
		b = g
	}
	if b < base {
		b = base
	}
	if b >= until {
		return until, until
	}
	return b, b - 1
}

// RunUntilIdle executes events until none remain anywhere. It returns
// ErrStopped if Stop was called.
func (s *Sharded) RunUntilIdle() error {
	if s.stopped.CompareAndSwap(true, false) {
		return ErrStopped
	}
	stop := s.startWorkers()
	defer stop()
	s.drain()
	for {
		if err := s.runGlobalDue(s.global.now); err != nil {
			s.parkLanes(s.global.now)
			return err
		}
		s.drain()
		if s.stopped.CompareAndSwap(true, false) {
			s.parkLanes(s.global.now)
			return ErrStopped
		}
		m, mok := s.minPendingLane()
		g, gok := s.global.peekMin()
		switch {
		case !mok && !gok:
			s.parkLanes(s.global.now)
			return nil
		case !mok || (gok && g <= m):
			// Only (or first) a global event: jump straight to it.
			if s.global.now < g {
				s.global.now = g
			}
		default:
			lo := m
			if lo < s.global.now {
				lo = s.global.now
			}
			b := lo + s.epoch
			if gok && g < b {
				b = g
			}
			s.runSpan(b-1, b)
			s.drain()
			if s.global.now < b {
				s.global.now = b
			}
		}
	}
}
