package sim

import (
	"time"

	"rbcast/internal/detrand"
)

// Loop is the scheduling surface shared by the sequential Engine and the
// sharded parallel engine. Simulation code (netsim, harness, topologies)
// programs against Loop so a scenario can run on either implementation
// unchanged.
//
// A Loop exposes one or more lanes: independently clocked event queues
// that the sharded engine executes in parallel between conservative
// barriers. The sequential Engine is the one-lane degenerate case, where
// every lane-addressed method collapses onto the single global queue —
// so code written lane-aware runs byte-identically to code written
// against the plain Engine API when the lane count is one.
//
// The global methods (Schedule, Every, Now, Rand) address the
// coordinator context: events scheduled there run at epoch barriers with
// every lane parked, which makes them the right home for topology
// mutations, invariant probes, and monitors. The lane-addressed variants
// (ScheduleOn, EveryOn, NowOf, RandOf) address one lane's private clock
// and PRNG stream; they may only be called while lanes are parked
// (before Run, or between Run calls). ScheduleCross is the only
// scheduling call legal from inside a lane event, and is how work moves
// between lanes.
type Loop interface {
	// Now returns the global virtual time: the last barrier the loop
	// advanced to (for the sequential Engine, simply the clock).
	Now() time.Duration
	// Rand returns the global deterministic random source. From lane
	// events use RandOf with the executing lane instead.
	Rand() *detrand.Rand
	// EventsRun reports the number of events executed so far, summed
	// over every lane and the global queue.
	EventsRun() uint64
	// Pending reports the number of events currently scheduled anywhere
	// (including canceled events not yet popped and undrained mailbox
	// entries).
	Pending() int
	// Schedule runs fn after delay of virtual time in the global
	// (coordinator) context. Must not be called from a lane event.
	Schedule(delay time.Duration, fn Event) Timer
	// Every schedules fn periodically in the global context. Must not be
	// called from a lane event.
	Every(period time.Duration, fn Event) Timer
	// Run executes events until the virtual clock would pass until, then
	// sets the clock to until. Events scheduled exactly at until do
	// fire. It returns ErrStopped if Stop was called.
	Run(until time.Duration) error
	// RunUntilIdle executes events until none remain.
	RunUntilIdle() error
	// Stop makes the in-flight Run/RunUntilIdle return ErrStopped after
	// the current event (sequential) or epoch (sharded) completes. Safe
	// to call from any event context.
	Stop()

	// Lanes reports the number of lanes (1 for the sequential Engine).
	Lanes() int
	// NowOf returns lane's virtual clock. Between Run calls every lane
	// clock equals Now.
	NowOf(lane int) time.Duration
	// RandOf returns lane's deterministic random source. Events running
	// on a lane must draw randomness only from their own lane's stream.
	RandOf(lane int) *detrand.Rand
	// ScheduleOn schedules fn on lane's queue after delay of that lane's
	// virtual time. Must be called with lanes parked.
	ScheduleOn(lane int, delay time.Duration, fn Event) Timer
	// EveryOn schedules fn periodically on lane's queue. Must be called
	// with lanes parked.
	EveryOn(lane int, period time.Duration, fn Event) Timer
	// ScheduleCross schedules fn on lane to, delay after lane from's
	// current time. It is the only scheduling call legal from inside a
	// lane event (with from the executing lane). Cross-lane calls
	// (from != to) require delay >= the loop's lookahead bound; same-lane
	// calls may use any delay.
	ScheduleCross(from, to int, delay time.Duration, fn Event)
}

// Engine's Loop implementation: one lane, every lane-addressed method
// collapses onto the single queue. This keeps lane-aware callers (the
// network simulator, the harness) byte-identical to their pre-sharding
// behavior when running sequentially.

// Lanes reports 1: the sequential engine is a single lane.
func (e *Engine) Lanes() int { return 1 }

// NowOf returns the engine clock; the lane argument is ignored.
func (e *Engine) NowOf(int) time.Duration { return e.now }

// RandOf returns the engine's random source; the lane argument is
// ignored.
func (e *Engine) RandOf(int) *detrand.Rand { return e.rng }

// ScheduleOn schedules on the single queue; the lane argument is
// ignored.
func (e *Engine) ScheduleOn(_ int, delay time.Duration, fn Event) Timer {
	return e.Schedule(delay, fn)
}

// EveryOn schedules on the single queue; the lane argument is ignored.
func (e *Engine) EveryOn(_ int, period time.Duration, fn Event) Timer {
	return e.Every(period, fn)
}

// ScheduleCross schedules on the single queue; the lane arguments are
// ignored.
func (e *Engine) ScheduleCross(_, _ int, delay time.Duration, fn Event) {
	e.Schedule(delay, fn)
}

var _ Loop = (*Engine)(nil)
var _ Loop = (*Sharded)(nil)
