package sim

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// runShardedSynthetic drives a fixed synthetic workload — per-lane tick
// chains drawing lane randomness, cross-lane sends honoring the
// lookahead, and a periodic global observer — on a 4-lane partition
// executed by the given worker count, and returns the full merged trace.
func runShardedSynthetic(t *testing.T, seed int64, workers int) string {
	t.Helper()
	const lanes = 4
	const delta = 5 * time.Millisecond
	s := NewSharded(seed, workers)
	s.SetLanes([]int{3, 1, 2, 2}, delta)

	// Per-lane trace buffers: each is appended to only by its own lane's
	// events (or the parked coordinator), so the workload is race-free
	// by lane confinement.
	traces := make([][]string, lanes)
	var global []string
	for l := 0; l < lanes; l++ {
		l := l
		s.EveryOn(l, time.Millisecond, func() {
			v := s.RandOf(l).Int63n(1000)
			traces[l] = append(traces[l], fmt.Sprintf("lane%d tick@%v v=%d", l, s.NowOf(l), v))
			if v%3 == 0 {
				to := int(v % lanes)
				d := delta + time.Duration(v)*time.Microsecond
				s.ScheduleCross(l, to, d, func() {
					traces[to] = append(traces[to], fmt.Sprintf("lane%d recv@%v from=%d v=%d", to, s.NowOf(to), l, v))
				})
			}
		})
	}
	// Global observer: runs at barriers with lanes parked, so reading
	// cross-lane state (EventsRun sums every lane) is legal and must be
	// deterministic at every sample point.
	s.Every(20*time.Millisecond, func() {
		global = append(global, fmt.Sprintf("global@%v events=%d pending=%d", s.Now(), s.EventsRun(), s.Pending()))
	})
	if err := s.Run(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for l, tr := range traces {
		fmt.Fprintf(&b, "== lane %d ==\n", l)
		for _, line := range tr {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	b.WriteString("== global ==\n")
	for _, line := range global {
		b.WriteString(line)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "final now=%v events=%d\n", s.Now(), s.EventsRun())
	return b.String()
}

// TestShardedWorkerCountIdentity pins the engine's core contract: the
// trace of a seeded run depends on the lane partition, never on the
// worker count. Workers are a pure throughput knob.
func TestShardedWorkerCountIdentity(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ref := runShardedSynthetic(t, seed, 1)
			if !strings.Contains(ref, "recv@") {
				t.Fatal("no cross-lane deliveries; the identity check is vacuous")
			}
			for _, workers := range []int{2, 3, 4, 8} {
				got := runShardedSynthetic(t, seed, workers)
				if got != ref {
					t.Fatalf("workers=%d diverged from workers=1:\n--- 1 worker ---\n%s--- %d workers ---\n%s",
						workers, ref, workers, got)
				}
			}
		})
	}
}

// Different seeds must produce different traces: per-lane streams derive
// from the run seed, so seed changes reach every lane.
func TestShardedSeedsDiverge(t *testing.T) {
	a := runShardedSynthetic(t, 1, 2)
	b := runShardedSynthetic(t, 2, 2)
	if a == b {
		t.Fatal("different seeds produced identical traces")
	}
}

// Global events run at their exact scheduled instant with every lane
// parked there — the property topology mutations and probes rely on.
func TestShardedGlobalEventExactInstant(t *testing.T) {
	s := NewSharded(1, 4)
	s.SetLanes([]int{1, 1, 1}, 2*time.Millisecond)
	for l := 0; l < 3; l++ {
		s.EveryOn(l, time.Millisecond, func() {})
	}
	const at = 7500 * time.Microsecond
	checked := false
	s.Schedule(at, func() {
		checked = true
		if s.Now() != at {
			t.Errorf("global event sees Now=%v, want %v", s.Now(), at)
		}
		for l := 0; l < s.Lanes(); l++ {
			if s.NowOf(l) != at {
				t.Errorf("lane %d clock = %v during global event, want %v", l, s.NowOf(l), at)
			}
		}
	})
	if err := s.Run(20 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !checked {
		t.Fatal("global event never ran")
	}
	if s.Now() != 20*time.Millisecond {
		t.Errorf("final clock %v, want 20ms", s.Now())
	}
	for l := 0; l < s.Lanes(); l++ {
		if s.NowOf(l) != s.Now() {
			t.Errorf("lane %d parked at %v, want %v", l, s.NowOf(l), s.Now())
		}
	}
}

// The sharded engine honors the same pending-Stop contract as the
// sequential one: ErrStopped before any event runs, clock untouched.
func TestShardedStopPending(t *testing.T) {
	s := NewSharded(3, 2)
	s.SetLanes([]int{1, 1}, time.Millisecond)
	fired := false
	s.ScheduleOn(0, 5*time.Millisecond, func() { fired = true })
	s.Stop()
	if err := s.Run(10 * time.Millisecond); err != ErrStopped {
		t.Fatalf("Run with pending Stop returned %v, want ErrStopped", err)
	}
	if fired || s.Now() != 0 {
		t.Errorf("fired=%t now=%v after ErrStopped, want false/0", fired, s.Now())
	}
	if err := s.Run(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !fired {
		t.Error("event did not run after the Stop was consumed")
	}
}

// Stop from inside a lane event takes effect at the next barrier and
// Run resumes cleanly afterwards.
func TestShardedStopFromLaneEvent(t *testing.T) {
	s := NewSharded(5, 2)
	s.SetLanes([]int{1, 1}, time.Millisecond)
	ticks := 0
	s.EveryOn(0, time.Millisecond, func() {
		ticks++
		if ticks == 5 {
			s.Stop()
		}
	})
	if err := s.Run(time.Second); err != ErrStopped {
		t.Fatalf("Run returned %v, want ErrStopped", err)
	}
	if s.Now() >= time.Second {
		t.Errorf("clock ran to the horizon (%v) despite Stop", s.Now())
	}
	stoppedAt := s.Now()
	if err := s.Run(stoppedAt + 10*time.Millisecond); err != nil {
		t.Fatalf("Run after Stop: %v", err)
	}
	if ticks <= 5 {
		t.Errorf("ticks = %d after resume, want > 5", ticks)
	}
}

// Events scheduled exactly at the horizon fire, matching Run's contract
// on the sequential engine — including same-instant chains they spawn.
func TestShardedRunHorizonInclusive(t *testing.T) {
	s := NewSharded(1, 2)
	s.SetLanes([]int{1, 1}, time.Millisecond)
	var atHorizon, chained bool
	s.ScheduleOn(1, 10*time.Millisecond, func() {
		atHorizon = true
		s.ScheduleCross(1, 1, 0, func() { chained = true })
	})
	if err := s.Run(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if !atHorizon || !chained {
		t.Errorf("atHorizon=%t chained=%t, want both true", atHorizon, chained)
	}
}

// Scheduling through the parked-only entry points from inside a lane
// event is a bug in the caller; the engine must fail loudly, not corrupt
// another lane's heap.
func TestShardedScheduleFromLaneEventPanics(t *testing.T) {
	s := NewSharded(1, 2)
	s.SetLanes([]int{1, 1}, time.Millisecond)
	panicked := make(chan any, 1)
	s.ScheduleOn(0, time.Millisecond, func() {
		defer func() { panicked <- recover() }()
		s.Schedule(time.Millisecond, func() {})
	})
	// The worker panic propagates through the pool; contain the run.
	func() {
		defer func() { recover() }()
		_ = s.Run(5 * time.Millisecond)
	}()
	select {
	case v := <-panicked:
		if v == nil {
			t.Fatal("Schedule from a lane event did not panic")
		}
	default:
		t.Fatal("lane event never ran")
	}
}

// SetLanes after lane events exist would orphan them; it must refuse.
func TestShardedSetLanesAfterScheduleOnPanics(t *testing.T) {
	s := NewSharded(1, 2)
	s.SetLanes([]int{1, 1}, time.Millisecond)
	s.ScheduleOn(0, time.Millisecond, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("SetLanes after ScheduleOn did not panic")
		}
	}()
	s.SetLanes([]int{1, 1, 1}, time.Millisecond)
}

// RunUntilIdle drains lane heaps, mailboxes, and the global queue.
func TestShardedRunUntilIdle(t *testing.T) {
	s := NewSharded(9, 2)
	s.SetLanes([]int{1, 1}, 2*time.Millisecond)
	var order []string
	s.ScheduleOn(0, time.Millisecond, func() {
		order = append(order, "a") // lane 0; coordinator merges post-run
		s.ScheduleCross(0, 1, 2*time.Millisecond, func() {
			order = append(order, "b")
			s.ScheduleCross(1, 0, 3*time.Millisecond, func() { order = append(order, "c") })
		})
	})
	s.Schedule(4*time.Millisecond, func() { order = append(order, "g") })
	if err := s.RunUntilIdle(); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(order, "")
	if got != "abgc" {
		t.Fatalf("execution order %q, want %q", got, "abgc")
	}
	if s.Pending() != 0 {
		t.Errorf("Pending = %d after RunUntilIdle, want 0", s.Pending())
	}
}
