// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of timed
// events. Events scheduled for the same instant fire in the order they
// were scheduled, which — together with a single seeded random source —
// makes every simulation run fully reproducible: the same seed and the
// same scenario produce the same event sequence, byte for byte.
//
// The queue is built for hot-loop throughput: a 4-ary implicit heap (no
// interface boxing, shallower than a binary heap), cancellation cells
// recycled through a free list instead of allocated per event, and
// compaction that sweeps canceled entries out of the heap once they
// outnumber live ones — so timer-churn-heavy runs (backoff scheduling,
// long recovery soaks) stay allocation-light and bounded in memory. None
// of this affects event order: events always fire in strict
// (time, insertion order) sequence.
package sim

import (
	"errors"
	"fmt"
	"time"

	"rbcast/internal/detrand"
)

// Event is a callback scheduled to run at a virtual instant.
type Event func()

// ErrStopped is returned by Run variants when Stop was called.
var ErrStopped = errors.New("sim: engine stopped")

type scheduledEvent struct {
	at  time.Duration
	seq uint64 // insertion order; tie-break for same-instant events
	fn  Event
	// cell carries the cancellation flag; recycled via the engine's free
	// list once the event pops. Events admitted through pushCross (the
	// sharded engine's mailbox drain) carry a nil cell: they are not
	// cancelable and never count toward compaction.
	cell *cancelCell
}

// cancelCell is the shared state between a Timer and its scheduled
// event. Cells are recycled: gen increments on every release, so a Timer
// holding a stale cell (its event already fired or was compacted away)
// cancels nothing.
type cancelCell struct {
	canceled bool
	// inHeap reports whether the cell's event currently sits in the event
	// queue; only those cancellations count toward the compaction
	// threshold.
	inHeap bool
	gen    uint64
}

// Timer is a handle to a scheduled event that can be canceled.
type Timer struct {
	e    *Engine
	cell *cancelCell
	gen  uint64
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled timer is a no-op. Cancel on the zero Timer is a no-op.
//
//rblint:hotpath timer churn (backoff cancel/reschedule) dominates soak profiles
func (t Timer) Cancel() {
	if t.cell == nil || t.cell.gen != t.gen || t.cell.canceled {
		return
	}
	t.cell.canceled = true
	if t.cell.inHeap && t.e != nil {
		t.e.canceledPending++
		t.e.maybeCompact()
	}
}

// Engine is a deterministic discrete-event simulator. The zero value is
// not usable; construct with NewEngine.
type Engine struct {
	now     time.Duration
	seq     uint64
	events  []scheduledEvent // 4-ary min-heap on (at, seq)
	rng     *detrand.Rand
	stopped bool
	ran     uint64

	// canceledPending counts canceled events still occupying heap slots;
	// maybeCompact sweeps them once they outnumber live entries.
	canceledPending int
	freeCells       []*cancelCell
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: detrand.New(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source. All randomness
// in a simulation must come from here to preserve reproducibility.
func (e *Engine) Rand() *detrand.Rand { return e.rng }

// EventsRun reports the number of events executed so far.
func (e *Engine) EventsRun() uint64 { return e.ran }

// Pending reports the number of events currently scheduled (including
// canceled events not yet popped or compacted away).
func (e *Engine) Pending() int { return len(e.events) }

func (e *Engine) getCell() *cancelCell {
	if n := len(e.freeCells); n > 0 {
		c := e.freeCells[n-1]
		e.freeCells[n-1] = nil
		e.freeCells = e.freeCells[:n-1]
		c.canceled = false
		return c
	}
	return new(cancelCell)
}

// releaseCell retires a cell once its event left the heap. Bumping gen
// invalidates every outstanding Timer for it before reuse.
//
//rblint:hotpath cell recycling keeps timer churn allocation-free
func (e *Engine) releaseCell(c *cancelCell) {
	c.inHeap = false
	c.gen++
	e.freeCells = append(e.freeCells, c)
}

// Schedule runs fn after delay of virtual time. A negative delay is
// treated as zero. It returns a Timer that can cancel the event.
func (e *Engine) Schedule(delay time.Duration, fn Event) Timer {
	if fn == nil {
		panic("sim: Schedule called with nil event")
	}
	if delay < 0 {
		delay = 0
	}
	cell := e.getCell()
	cell.inHeap = true
	e.seq++
	e.push(scheduledEvent{at: e.now + delay, seq: e.seq, fn: fn, cell: cell})
	return Timer{e: e, cell: cell, gen: cell.gen}
}

// pushCross admits an event at an absolute instant without allocating a
// cancel cell; the event cannot be canceled. This is the admission seam
// for the sharded engine's mailbox drain: cross-lane events arrive with
// a precomputed absolute time and must not touch the cell free list
// (getCell may allocate, and drains run on the hot barrier path). An
// instant in the engine's past is clamped to now.
//
//rblint:hotpath mailbox drain runs once per lane pair per epoch barrier
func (e *Engine) pushCross(at time.Duration, fn Event) {
	if at < e.now {
		at = e.now
	}
	e.seq++
	e.push(scheduledEvent{at: at, seq: e.seq, fn: fn})
}

// The event queue is a 4-ary implicit min-heap: children of slot i live
// at 4i+1..4i+4. The wider fan-out roughly halves the sift depth of a
// binary heap and keeps hot comparisons within one cache line of
// siblings.

//rblint:hotpath heap comparison, run O(log n) times per schedule/pop
func (e *Engine) less(a, b scheduledEvent) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

//rblint:hotpath event admission; every Schedule lands here
func (e *Engine) push(ev scheduledEvent) {
	e.events = append(e.events, ev)
	e.siftUp(len(e.events) - 1)
}

//rblint:hotpath heap restore after push
func (e *Engine) siftUp(i int) {
	h := e.events
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(ev, h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
}

//rblint:hotpath heap restore after pop and during compaction
func (e *Engine) siftDown(i int) {
	h := e.events
	n := len(h)
	ev := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(h[c], h[min]) {
				min = c
			}
		}
		if !e.less(h[min], ev) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = ev
}

// popRoot removes the heap minimum (the caller has already read it from
// slot 0).
//
//rblint:hotpath every executed event pops through here
func (e *Engine) popRoot() {
	h := e.events
	n := len(h) - 1
	h[0] = h[n]
	h[n] = scheduledEvent{} // release fn and cell references
	e.events = h[:n]
	if n > 0 {
		e.siftDown(0)
	}
}

// compactMin is the heap size below which compaction is not worth the
// sweep; small heaps drain canceled entries quickly on their own.
const compactMin = 64

// maybeCompact sweeps canceled events out of the queue once they exceed
// half the heap, then restores the heap property. Without it, workloads
// that schedule and cancel timers en masse (exponential backoff across
// many peers) grow the queue without bound. Pop order is unaffected:
// live events keep their (at, seq) keys.
//
//rblint:hotpath sweeps canceled timers in place; must not copy the heap
func (e *Engine) maybeCompact() {
	if len(e.events) < compactMin || 2*e.canceledPending <= len(e.events) {
		return
	}
	kept := e.events[:0]
	for _, ev := range e.events {
		if ev.cell != nil && ev.cell.canceled {
			e.releaseCell(ev.cell)
			continue
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(e.events); i++ {
		e.events[i] = scheduledEvent{}
	}
	e.events = kept
	e.canceledPending = 0
	// Bottom-up heapify: O(n), independent of the removal pattern.
	for i := (len(kept) - 2) / 4; i >= 0; i-- {
		e.siftDown(i)
	}
}

// Stop makes the currently running Run/RunUntilIdle return after the
// in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// peekMin reports the instant of the earliest scheduled event. Canceled
// entries are included: the sharded coordinator uses this as a barrier
// bound, and a bound that is slightly early is merely conservative.
func (e *Engine) peekMin() (time.Duration, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].at, true
}

// step pops and executes the next event. It reports whether an event ran.
func (e *Engine) step(limit time.Duration, bounded bool) (bool, error) {
	for len(e.events) > 0 {
		next := e.events[0]
		if bounded && next.at > limit {
			return false, nil
		}
		e.popRoot()
		if next.cell != nil {
			if next.cell.canceled {
				e.canceledPending--
				e.releaseCell(next.cell)
				continue
			}
			e.releaseCell(next.cell)
		}
		if next.at > e.now {
			e.now = next.at
		}
		e.ran++
		next.fn()
		if e.stopped {
			return true, ErrStopped
		}
		return true, nil
	}
	return false, nil
}

// Run executes events until the virtual clock would pass until, then sets
// the clock to until. Events scheduled exactly at until do fire. It
// returns ErrStopped if Stop was called.
//
// A Stop that arrives outside a run (or raced the end of the previous
// one) is honored before any event executes: Run returns ErrStopped and
// leaves the clock untouched rather than advancing it to until.
func (e *Engine) Run(until time.Duration) error {
	if e.stopped {
		e.stopped = false
		return ErrStopped
	}
	if until < e.now {
		return fmt.Errorf("sim: Run until %v is before now %v", until, e.now)
	}
	for {
		ran, err := e.step(until, true)
		if err != nil {
			e.stopped = false
			return err
		}
		if !ran {
			e.now = until
			return nil
		}
	}
}

// Every schedules fn to run at the given period, starting one period
// from now, until the returned timer is canceled. The callback runs once
// per period regardless of how long it takes (virtual time is free).
func (e *Engine) Every(period time.Duration, fn Event) Timer {
	if fn == nil {
		panic("sim: Every called with nil event")
	}
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every called with period %v", period))
	}
	// The cell is private to this periodic chain (never enters the heap,
	// never recycled), so the returned Timer stays valid for the chain's
	// whole lifetime.
	cell := new(cancelCell)
	var tick Event
	tick = func() {
		if cell.canceled {
			return
		}
		fn()
		if !cell.canceled {
			e.Schedule(period, tick)
		}
	}
	e.Schedule(period, tick)
	return Timer{e: e, cell: cell, gen: cell.gen}
}

// RunUntilIdle executes events until none remain. It returns ErrStopped
// if Stop was called. Use with care: periodic timers that reschedule
// themselves never drain.
//
// Like Run, a Stop pending from outside a run is honored before any
// event executes.
func (e *Engine) RunUntilIdle() error {
	if e.stopped {
		e.stopped = false
		return ErrStopped
	}
	for {
		ran, err := e.step(0, false)
		if err != nil {
			e.stopped = false
			return err
		}
		if !ran {
			return nil
		}
	}
}
