// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of timed
// events. Events scheduled for the same instant fire in the order they
// were scheduled, which — together with a single seeded random source —
// makes every simulation run fully reproducible: the same seed and the
// same scenario produce the same event sequence, byte for byte.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"

	"rbcast/internal/detrand"
)

// Event is a callback scheduled to run at a virtual instant.
type Event func()

// ErrStopped is returned by Run variants when Stop was called.
var ErrStopped = errors.New("sim: engine stopped")

type scheduledEvent struct {
	at  time.Duration
	seq uint64 // insertion order; tie-break for same-instant events
	fn  Event
	// canceled events stay in the heap but are skipped when popped.
	canceled *bool
}

type eventHeap []scheduledEvent

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(scheduledEvent)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = scheduledEvent{}
	*h = old[:n-1]
	return ev
}

// Timer is a handle to a scheduled event that can be canceled.
type Timer struct {
	canceled *bool
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled timer is a no-op. Cancel on the zero Timer is a no-op.
func (t Timer) Cancel() {
	if t.canceled != nil {
		*t.canceled = true
	}
}

// Engine is a deterministic discrete-event simulator. The zero value is
// not usable; construct with NewEngine.
type Engine struct {
	now     time.Duration
	seq     uint64
	events  eventHeap
	rng     *detrand.Rand
	stopped bool
	ran     uint64
}

// NewEngine returns an engine whose random source is seeded with seed.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: detrand.New(seed)}
}

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Rand returns the engine's deterministic random source. All randomness
// in a simulation must come from here to preserve reproducibility.
func (e *Engine) Rand() *detrand.Rand { return e.rng }

// EventsRun reports the number of events executed so far.
func (e *Engine) EventsRun() uint64 { return e.ran }

// Pending reports the number of events currently scheduled (including
// canceled events not yet popped).
func (e *Engine) Pending() int { return len(e.events) }

// Schedule runs fn after delay of virtual time. A negative delay is
// treated as zero. It returns a Timer that can cancel the event.
func (e *Engine) Schedule(delay time.Duration, fn Event) Timer {
	if fn == nil {
		panic("sim: Schedule called with nil event")
	}
	if delay < 0 {
		delay = 0
	}
	canceled := new(bool)
	e.seq++
	heap.Push(&e.events, scheduledEvent{
		at:       e.now + delay,
		seq:      e.seq,
		fn:       fn,
		canceled: canceled,
	})
	return Timer{canceled: canceled}
}

// Stop makes the currently running Run/RunUntilIdle return after the
// in-flight event completes.
func (e *Engine) Stop() { e.stopped = true }

// step pops and executes the next event. It reports whether an event ran.
func (e *Engine) step(limit time.Duration, bounded bool) (bool, error) {
	for len(e.events) > 0 {
		next := e.events[0]
		if bounded && next.at > limit {
			return false, nil
		}
		heap.Pop(&e.events)
		if *next.canceled {
			continue
		}
		if next.at > e.now {
			e.now = next.at
		}
		e.ran++
		next.fn()
		if e.stopped {
			return true, ErrStopped
		}
		return true, nil
	}
	return false, nil
}

// Run executes events until the virtual clock would pass until, then sets
// the clock to until. Events scheduled exactly at until do fire. It
// returns ErrStopped if Stop was called.
func (e *Engine) Run(until time.Duration) error {
	if until < e.now {
		return fmt.Errorf("sim: Run until %v is before now %v", until, e.now)
	}
	for {
		ran, err := e.step(until, true)
		if err != nil {
			e.stopped = false
			return err
		}
		if !ran {
			e.now = until
			return nil
		}
	}
}

// Every schedules fn to run at the given period, starting one period
// from now, until the returned timer is canceled. The callback runs once
// per period regardless of how long it takes (virtual time is free).
func (e *Engine) Every(period time.Duration, fn Event) Timer {
	if fn == nil {
		panic("sim: Every called with nil event")
	}
	if period <= 0 {
		panic(fmt.Sprintf("sim: Every called with period %v", period))
	}
	canceled := new(bool)
	var tick Event
	tick = func() {
		if *canceled {
			return
		}
		fn()
		if !*canceled {
			e.Schedule(period, tick)
		}
	}
	e.Schedule(period, tick)
	return Timer{canceled: canceled}
}

// RunUntilIdle executes events until none remain. It returns ErrStopped
// if Stop was called. Use with care: periodic timers that reschedule
// themselves never drain.
func (e *Engine) RunUntilIdle() error {
	for {
		ran, err := e.step(0, false)
		if err != nil {
			e.stopped = false
			return err
		}
		if !ran {
			return nil
		}
	}
}
