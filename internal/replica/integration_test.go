package replica_test

import (
	"fmt"
	"testing"
	"time"

	"rbcast/internal/core"
	"rbcast/internal/live"
	"rbcast/internal/replica"
	"rbcast/internal/seqset"
)

// TestReplicatedStoreOverLiveFleet is the paper's end-to-end story: a
// replicated database fed by the reliable broadcast, converging despite
// a partition, with updates applied in arrival order (unordered).
func TestReplicatedStoreOverLiveFleet(t *testing.T) {
	hosts := []core.HostID{1, 2, 3, 4}
	stores := map[core.HostID]*replica.Store{}
	for _, h := range hosts {
		stores[h] = replica.NewStore()
	}
	clusters := [][]core.HostID{{1, 2}, {3, 4}}
	fleet, err := live.StartFleet(live.FleetConfig{
		Hosts:    hosts,
		Source:   1,
		Clusters: clusters,
		Seed:     51,
		OnDeliver: func(host core.HostID, _ core.HostID, _ seqset.Seq, payload []byte) {
			u, err := replica.DecodeUpdate(payload)
			if err != nil {
				t.Errorf("host %d: bad update: %v", host, err)
				return
			}
			stores[host].Apply(u)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Stop()

	write := func(stamp uint64, key, value string, del bool) seqset.Seq {
		data, err := replica.EncodeUpdate(replica.Update{
			Key: key, Value: value, Stamp: stamp, Origin: 1, Delete: del,
		})
		if err != nil {
			t.Fatal(err)
		}
		seq, err := fleet.Broadcast(data)
		if err != nil {
			t.Fatal(err)
		}
		return seq
	}

	stamp := uint64(0)
	for i := 0; i < 8; i++ {
		stamp++
		write(stamp, fmt.Sprintf("k%d", i%3), fmt.Sprintf("v%d", stamp), false)
	}
	// Partition the second cluster and keep writing, including deletes.
	fleet.Transport.PartitionGroups(clusters)
	for i := 0; i < 8; i++ {
		stamp++
		write(stamp, fmt.Sprintf("k%d", i%3), fmt.Sprintf("v%d", stamp), i%4 == 3)
	}
	fleet.Transport.HealAll()
	if !fleet.WaitDelivered(seqset.Seq(stamp), 20*time.Second) {
		t.Fatalf("replication incomplete; host 3 has %v", fleet.Delivered(3))
	}
	want := stores[1].Fingerprint()
	for _, h := range hosts {
		if got := stores[h].Fingerprint(); got != want {
			t.Errorf("replica %d diverged:\n%s\nvs\n%s", h, got, want)
		}
	}
	if want == "" {
		t.Error("empty fingerprint — nothing was replicated")
	}
}
