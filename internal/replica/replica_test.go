package replica_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"rbcast/internal/replica"
)

func TestBasicApplyGet(t *testing.T) {
	s := replica.NewStore()
	if _, ok := s.Get("k"); ok {
		t.Error("empty store returned a value")
	}
	if !s.Apply(replica.Update{Key: "k", Value: "v1", Stamp: 1, Origin: 1}) {
		t.Error("first apply reported no change")
	}
	if v, ok := s.Get("k"); !ok || v != "v1" {
		t.Errorf("Get = %q,%v", v, ok)
	}
	// An older write loses.
	if s.Apply(replica.Update{Key: "k", Value: "old", Stamp: 0, Origin: 9}) {
		t.Error("stale write reported a change")
	}
	if v, _ := s.Get("k"); v != "v1" {
		t.Errorf("stale write overwrote: %q", v)
	}
	// A newer write wins.
	s.Apply(replica.Update{Key: "k", Value: "v2", Stamp: 2, Origin: 1})
	if v, _ := s.Get("k"); v != "v2" {
		t.Errorf("newer write lost: %q", v)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestDeleteSemantics(t *testing.T) {
	s := replica.NewStore()
	s.Apply(replica.Update{Key: "k", Value: "v", Stamp: 1, Origin: 1})
	s.Apply(replica.Update{Key: "k", Stamp: 2, Origin: 1, Delete: true})
	if _, ok := s.Get("k"); ok {
		t.Error("deleted key still readable")
	}
	if s.Len() != 0 {
		t.Errorf("Len = %d after delete", s.Len())
	}
	// A later write resurrects the key.
	s.Apply(replica.Update{Key: "k", Value: "back", Stamp: 3, Origin: 1})
	if v, ok := s.Get("k"); !ok || v != "back" {
		t.Errorf("resurrection failed: %q,%v", v, ok)
	}
	// An earlier write does not.
	s.Apply(replica.Update{Key: "gone", Stamp: 5, Origin: 1, Delete: true})
	s.Apply(replica.Update{Key: "gone", Value: "late", Stamp: 4, Origin: 1})
	if _, ok := s.Get("gone"); ok {
		t.Error("older write resurrected a tombstoned key")
	}
}

func TestTieBreaking(t *testing.T) {
	// Same stamp, different origins: higher origin wins everywhere.
	a := replica.Update{Key: "k", Value: "fromA", Stamp: 7, Origin: 1}
	b := replica.Update{Key: "k", Value: "fromB", Stamp: 7, Origin: 2}
	s1 := replica.NewStore()
	s1.Apply(a)
	s1.Apply(b)
	s2 := replica.NewStore()
	s2.Apply(b)
	s2.Apply(a)
	if s1.Fingerprint() != s2.Fingerprint() {
		t.Errorf("tie-break order-dependent:\n%s\nvs\n%s", s1.Fingerprint(), s2.Fingerprint())
	}
	if v, _ := s1.Get("k"); v != "fromB" {
		t.Errorf("winner = %q, want fromB (higher origin)", v)
	}
}

func TestKeysSorted(t *testing.T) {
	s := replica.NewStore()
	for _, k := range []string{"zebra", "apple", "mango"} {
		s.Apply(replica.Update{Key: k, Value: "x", Stamp: 1, Origin: 1})
	}
	s.Apply(replica.Update{Key: "apple", Stamp: 2, Origin: 1, Delete: true})
	keys := s.Keys()
	if len(keys) != 2 || keys[0] != "mango" || keys[1] != "zebra" {
		t.Errorf("Keys = %v", keys)
	}
}

// Property: applying any permutation of any multiset of updates (with
// duplicates) converges to the same fingerprint — the commutativity,
// associativity, and idempotence the paper's application model needs.
func TestQuickConvergence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		updates := make([]replica.Update, n)
		keys := []string{"a", "b", "c", "d"}
		for i := range updates {
			updates[i] = replica.Update{
				Key:    keys[rng.Intn(len(keys))],
				Value:  string(rune('a' + rng.Intn(26))),
				Stamp:  uint64(rng.Intn(8)), // small range → frequent ties
				Origin: uint32(rng.Intn(4)),
				Delete: rng.Intn(5) == 0,
			}
		}
		apply := func(order []int, dup bool) string {
			s := replica.NewStore()
			for _, idx := range order {
				s.Apply(updates[idx])
				if dup && rng.Intn(3) == 0 {
					s.Apply(updates[idx]) // idempotence
				}
			}
			return s.Fingerprint()
		}
		base := make([]int, n)
		for i := range base {
			base[i] = i
		}
		want := apply(base, false)
		for trial := 0; trial < 4; trial++ {
			perm := rng.Perm(n)
			if apply(perm, trial%2 == 0) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateCodecRoundTrip(t *testing.T) {
	f := func(key, value string, stamp uint64, origin uint32, del bool) bool {
		if len(key) > replica.MaxKeyLen || len(value) > replica.MaxValueLen {
			return true // out of scope
		}
		u := replica.Update{Key: key, Value: value, Stamp: stamp, Origin: origin, Delete: del}
		data, err := replica.EncodeUpdate(u)
		if err != nil {
			return false
		}
		got, err := replica.DecodeUpdate(data)
		return err == nil && got == u
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateCodecRejectsGarbage(t *testing.T) {
	good, err := replica.EncodeUpdate(replica.Update{Key: "k", Value: "v", Stamp: 1, Origin: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		{},
		good[:5],
		good[:len(good)-1],
		append(append([]byte{}, good...), 0xFF),
	}
	for i, data := range cases {
		if _, err := replica.DecodeUpdate(data); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Declared lengths beyond limits are refused without allocation.
	huge := append([]byte{}, good...)
	huge[13], huge[14], huge[15], huge[16] = 0xFF, 0xFF, 0xFF, 0xFF // key length
	if _, err := replica.DecodeUpdate(huge); err == nil {
		t.Error("huge declared key length accepted")
	}
}

func TestUpdateCodecRejectsOversized(t *testing.T) {
	if _, err := replica.EncodeUpdate(replica.Update{
		Key: string(make([]byte, replica.MaxKeyLen+1)),
	}); err == nil {
		t.Error("oversized key accepted")
	}
	if _, err := replica.EncodeUpdate(replica.Update{
		Key: "k", Value: string(make([]byte, replica.MaxValueLen+1)),
	}); err == nil {
		t.Error("oversized value accepted")
	}
}
