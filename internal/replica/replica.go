// Package replica implements the paper's motivating application: a
// highly available replicated database fed by reliable broadcast.
//
// §1 of the paper explains why broadcast need not be ordered: the
// availability-first reconciliation schemes it cites (DataPatch, log
// transformation) install updates commutatively, so replicas converge as
// long as every update eventually reaches every replica — exactly the
// guarantee the broadcast protocol provides. This package supplies such
// a database: a last-writer-wins register map whose Apply is commutative,
// associative, and idempotent, plus a binary update codec, so it can sit
// directly on any of the repository's runtimes (Deliver → Decode →
// Apply).
package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Update is one replicated write (or deletion). Stamp orders writes to
// the same key: the highest stamp wins, with Origin as the deterministic
// tie-breaker. Stamps are typically the originating host's logical
// clock.
type Update struct {
	Key    string
	Value  string
	Stamp  uint64
	Origin uint32 // originating host, breaks stamp ties
	Delete bool
}

// wins reports whether u supersedes old for the same key.
func (u Update) wins(old Update) bool {
	if u.Stamp != old.Stamp {
		return u.Stamp > old.Stamp
	}
	if u.Origin != old.Origin {
		return u.Origin > old.Origin
	}
	// Full tie: prefer the deletion, then the larger value, so the
	// relation is total and all replicas agree.
	if u.Delete != old.Delete {
		return u.Delete
	}
	return u.Value > old.Value
}

// Store is a last-writer-wins replicated register map. Safe for
// concurrent use. The zero value is not ready; use NewStore.
type Store struct {
	mu      sync.RWMutex
	rows    map[string]Update
	applied uint64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{rows: make(map[string]Update)}
}

// Apply merges one update. It is commutative, associative, and
// idempotent: any arrival order and any duplication yields the same
// state. It reports whether the update changed the winning row.
func (s *Store) Apply(u Update) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.applied++
	old, exists := s.rows[u.Key]
	if exists && !u.wins(old) {
		return false
	}
	if exists && old == u {
		return false
	}
	s.rows[u.Key] = u
	return true
}

// Get returns the current value of key. Deleted or absent keys report
// ok == false.
func (s *Store) Get(key string) (value string, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	row, exists := s.rows[key]
	if !exists || row.Delete {
		return "", false
	}
	return row.Value, true
}

// Len counts live (non-deleted) keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := 0
	for _, row := range s.rows {
		if !row.Delete {
			n++
		}
	}
	return n
}

// Applied counts Apply calls (including no-ops), for observability.
func (s *Store) Applied() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.applied
}

// Keys returns the live keys, sorted.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.rows))
	for k, row := range s.rows {
		if !row.Delete {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}

// Fingerprint renders the full state (including tombstones)
// deterministically; equal fingerprints mean converged replicas.
func (s *Store) Fingerprint() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	keys := make([]string, 0, len(s.rows))
	for k := range s.rows {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		row := s.rows[k]
		fmt.Fprintf(&b, "%q=%q@%d/%d", k, row.Value, row.Stamp, row.Origin)
		if row.Delete {
			b.WriteString("!")
		}
		b.WriteByte(';')
	}
	return b.String()
}

// Codec limits, guarding the decoder against hostile input.
const (
	// MaxKeyLen bounds encoded key length.
	MaxKeyLen = 4096
	// MaxValueLen bounds encoded value length.
	MaxValueLen = 1 << 20
)

// ErrBadUpdate reports a malformed encoded update.
var ErrBadUpdate = errors.New("replica: malformed update")

// EncodeUpdate renders an update to bytes (the broadcast payload).
func EncodeUpdate(u Update) ([]byte, error) {
	if len(u.Key) > MaxKeyLen {
		return nil, fmt.Errorf("replica: key length %d exceeds %d", len(u.Key), MaxKeyLen)
	}
	if len(u.Value) > MaxValueLen {
		return nil, fmt.Errorf("replica: value length %d exceeds %d", len(u.Value), MaxValueLen)
	}
	buf := make([]byte, 0, 1+8+4+4+len(u.Key)+4+len(u.Value))
	var flags byte
	if u.Delete {
		flags = 1
	}
	buf = append(buf, flags)
	buf = binary.BigEndian.AppendUint64(buf, u.Stamp)
	buf = binary.BigEndian.AppendUint32(buf, u.Origin)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(u.Key)))
	buf = append(buf, u.Key...)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(u.Value)))
	buf = append(buf, u.Value...)
	return buf, nil
}

// DecodeUpdate parses an encoded update.
func DecodeUpdate(data []byte) (Update, error) {
	var u Update
	if len(data) < 1+8+4+4 {
		return u, ErrBadUpdate
	}
	u.Delete = data[0]&1 != 0
	u.Stamp = binary.BigEndian.Uint64(data[1:9])
	u.Origin = binary.BigEndian.Uint32(data[9:13])
	rest := data[13:]
	keyLen := binary.BigEndian.Uint32(rest[:4])
	rest = rest[4:]
	if keyLen > MaxKeyLen || uint64(len(rest)) < uint64(keyLen)+4 {
		return u, ErrBadUpdate
	}
	u.Key = string(rest[:keyLen])
	rest = rest[keyLen:]
	valLen := binary.BigEndian.Uint32(rest[:4])
	rest = rest[4:]
	if valLen > MaxValueLen || uint64(len(rest)) != uint64(valLen) {
		return u, ErrBadUpdate
	}
	u.Value = string(rest)
	return u, nil
}
