package replica

import (
	"bytes"
	"errors"
	"testing"
)

func ckptStore(t *testing.T, updates ...Update) *Store {
	t.Helper()
	s := NewStore()
	for _, u := range updates {
		s.Apply(u)
	}
	return s
}

func TestCheckpointRoundTrip(t *testing.T) {
	src := ckptStore(t,
		Update{Key: "b", Value: "2", Stamp: 2, Origin: 1},
		Update{Key: "a", Value: "1", Stamp: 1, Origin: 1},
		Update{Key: "gone", Stamp: 3, Origin: 2, Delete: true},
	)
	enc, err := EncodeCheckpoint(src, 42)
	if err != nil {
		t.Fatal(err)
	}
	mark, rows, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatal(err)
	}
	if mark != 42 {
		t.Errorf("watermark = %d, want 42", mark)
	}
	if len(rows) != 3 {
		t.Fatalf("decoded %d rows, want 3 (tombstones included)", len(rows))
	}
	dst := NewStore()
	if changed := dst.InstallRows(rows); changed != 3 {
		t.Errorf("InstallRows changed %d rows on an empty store, want 3", changed)
	}
	if got, want := dst.Fingerprint(), src.Fingerprint(); got != want {
		t.Errorf("fingerprint after install = %s, want %s", got, want)
	}
}

// TestCheckpointDeterministic pins the byte-identical encoding claim that
// chunked, resumable transfer depends on: equal states encode equally
// regardless of apply order or superseded intermediate writes.
func TestCheckpointDeterministic(t *testing.T) {
	a := ckptStore(t,
		Update{Key: "x", Value: "old", Stamp: 1, Origin: 1},
		Update{Key: "x", Value: "new", Stamp: 2, Origin: 1},
		Update{Key: "y", Value: "v", Stamp: 1, Origin: 2},
	)
	b := ckptStore(t,
		Update{Key: "y", Value: "v", Stamp: 1, Origin: 2},
		Update{Key: "x", Value: "new", Stamp: 2, Origin: 1},
	)
	encA, err := EncodeCheckpoint(a, 7)
	if err != nil {
		t.Fatal(err)
	}
	encB, err := EncodeCheckpoint(b, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(encA, encB) {
		t.Error("equal states encoded differently")
	}
}

// TestCheckpointInstallMerges pins the idempotent-merge contract: a
// checkpoint installed over partial (or newer) local state keeps the
// winners, and a second install changes nothing.
func TestCheckpointInstallMerges(t *testing.T) {
	src := ckptStore(t,
		Update{Key: "a", Value: "snap", Stamp: 5, Origin: 1},
		Update{Key: "b", Value: "snap", Stamp: 5, Origin: 1},
	)
	enc, err := EncodeCheckpoint(src, 10)
	if err != nil {
		t.Fatal(err)
	}
	_, rows, err := DecodeCheckpoint(enc)
	if err != nil {
		t.Fatal(err)
	}
	dst := ckptStore(t,
		Update{Key: "a", Value: "stale", Stamp: 1, Origin: 2}, // loses to the snapshot
		Update{Key: "b", Value: "newer", Stamp: 9, Origin: 2}, // beats the snapshot
	)
	dst.InstallRows(rows)
	if v, ok := dst.Get("a"); !ok || v != "snap" {
		t.Errorf(`a = %q, want snapshot winner "snap"`, v)
	}
	if v, ok := dst.Get("b"); !ok || v != "newer" {
		t.Errorf(`b = %q, want local winner "newer"`, v)
	}
	before := dst.Fingerprint()
	if changed := dst.InstallRows(rows); changed != 0 {
		t.Errorf("re-install changed %d rows, want 0", changed)
	}
	if dst.Fingerprint() != before {
		t.Error("re-install changed the fingerprint")
	}
}

func TestCheckpointDecodeRejectsMalformed(t *testing.T) {
	good, err := EncodeCheckpoint(ckptStore(t,
		Update{Key: "k", Value: "v", Stamp: 1, Origin: 1},
	), 3)
	if err != nil {
		t.Fatal(err)
	}
	mut := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return f(b)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short header", good[:8]},
		{"bad magic", mut(func(b []byte) []byte { b[0] = 0x00; return b })},
		{"bad version", mut(func(b []byte) []byte { b[1] = 9; return b })},
		{"row count over data", mut(func(b []byte) []byte { b[13]++; return b })},
		{"oversized row count", mut(func(b []byte) []byte {
			b[10], b[11], b[12], b[13] = 0xff, 0xff, 0xff, 0xff
			return b
		})},
		{"truncated row", good[:len(good)-1]},
		{"trailing bytes", append(append([]byte(nil), good...), 0x00)},
		{"zeroed row length", mut(func(b []byte) []byte {
			b[14], b[15], b[16], b[17] = 0, 0, 0, 0
			return b
		})},
	}
	for _, tt := range cases {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := DecodeCheckpoint(tt.data); !errors.Is(err, ErrBadCheckpoint) {
				t.Errorf("DecodeCheckpoint accepted %s (err = %v)", tt.name, err)
			}
		})
	}
	if _, _, err := DecodeCheckpoint(good); err != nil {
		t.Fatalf("control: pristine checkpoint rejected: %v", err)
	}
}
