package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
)

// Checkpoint support: a compact, deterministic snapshot of the whole
// store plus the confirmed-prefix watermark of the broadcast stream that
// produced it. Because Apply is commutative and idempotent, installing a
// checkpoint over any partial state is safe — rows the receiver already
// holds merge to the same winners — which is exactly what lets the
// broadcast layer hand a late joiner one snapshot instead of replaying a
// pruned history.
//
// Checkpoint layout (all integers big-endian, mirroring internal/wire's
// framing discipline: magic + version bytes, length prefixes, bounds
// checks before allocation):
//
//	byte    magic (0xC4)
//	byte    version (1)
//	uint64  watermark (confirmed broadcast prefix the state covers)
//	uint32  row count, then per row: uint32 length + EncodeUpdate bytes
//
// Rows are sorted by key, so equal states encode byte-identically and a
// checkpoint can be compared, resumed, and chunked deterministically.

const (
	ckptMagic   = 0xC4
	ckptVersion = 1

	// MaxCheckpointRows bounds the row count accepted by the checkpoint
	// decoder.
	MaxCheckpointRows = 1 << 20
)

// ErrBadCheckpoint reports a malformed encoded checkpoint.
var ErrBadCheckpoint = errors.New("replica: malformed checkpoint")

// Rows exports the full state (including tombstones) as updates sorted
// by key — the deterministic raw material of a checkpoint.
func (s *Store) Rows() []Update {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]Update, 0, len(s.rows))
	for _, row := range s.rows {
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// InstallRows merges a row export into the store via Apply, so partial
// local state and duplicated installs are harmless. It reports how many
// rows changed the winning state.
func (s *Store) InstallRows(rows []Update) int {
	changed := 0
	for _, u := range rows {
		if s.Apply(u) {
			changed++
		}
	}
	return changed
}

// EncodeCheckpoint renders the store's full state and the given
// confirmed-prefix watermark to bytes. Equal states with equal
// watermarks encode byte-identically.
func EncodeCheckpoint(s *Store, watermark uint64) ([]byte, error) {
	rows := s.Rows()
	buf := make([]byte, 0, 2+8+4+len(rows)*32)
	buf = append(buf, ckptMagic, ckptVersion)
	buf = binary.BigEndian.AppendUint64(buf, watermark)
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(rows)))
	for _, u := range rows {
		enc, err := EncodeUpdate(u)
		if err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(enc)))
		buf = append(buf, enc...)
	}
	return buf, nil
}

// DecodeCheckpoint parses an encoded checkpoint, rejecting malformed or
// oversized input before allocating for it.
func DecodeCheckpoint(data []byte) (watermark uint64, rows []Update, err error) {
	if len(data) < 2+8+4 {
		return 0, nil, ErrBadCheckpoint
	}
	if data[0] != ckptMagic {
		return 0, nil, fmt.Errorf("%w: bad magic 0x%02x", ErrBadCheckpoint, data[0])
	}
	if data[1] != ckptVersion {
		return 0, nil, fmt.Errorf("%w: unsupported version %d", ErrBadCheckpoint, data[1])
	}
	watermark = binary.BigEndian.Uint64(data[2:10])
	n := binary.BigEndian.Uint32(data[10:14])
	if n > MaxCheckpointRows {
		return 0, nil, fmt.Errorf("%w: %d rows", ErrBadCheckpoint, n)
	}
	rest := data[14:]
	rows = make([]Update, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(rest) < 4 {
			return 0, nil, ErrBadCheckpoint
		}
		rowLen := binary.BigEndian.Uint32(rest[:4])
		rest = rest[4:]
		if rowLen > 1+8+4+4+MaxKeyLen+4+MaxValueLen || uint64(len(rest)) < uint64(rowLen) {
			return 0, nil, ErrBadCheckpoint
		}
		u, err := DecodeUpdate(rest[:rowLen])
		if err != nil {
			return 0, nil, fmt.Errorf("%w: row %d: %v", ErrBadCheckpoint, i, err)
		}
		rest = rest[rowLen:]
		rows = append(rows, u)
	}
	if len(rest) != 0 {
		return 0, nil, fmt.Errorf("%w: trailing bytes", ErrBadCheckpoint)
	}
	return watermark, rows, nil
}
