// Command rbbench runs the perf-tracking benchmark suite
// (internal/bench) and writes a BENCH_<date>.json snapshot, so every
// optimization PR records its before/after numbers in the repository and
// the performance trajectory stays reviewable.
//
// Usage examples:
//
//	rbbench                         # full suite, 1s per benchmark, BENCH_<today>.json
//	rbbench -benchtime 1x -out bench-smoke.json   # CI smoke pass
//	rbbench -run 'Wire|Engine' -benchtime 100ms
//	rbbench -list                   # print case names and exit
//
// The JSON schema is documented in README.md ("Performance").
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"testing"
	"time"

	"rbcast/internal/bench"
)

// Snapshot is the BENCH_*.json document.
type Snapshot struct {
	// Date is the ISO day the snapshot was taken (-date overrides).
	Date string `json:"date"`
	// Label distinguishes snapshots taken the same day (e.g. "baseline").
	Label string `json:"label,omitempty"`
	// Go, OS, and Arch pin the toolchain and platform.
	Go   string `json:"go"`
	OS   string `json:"os"`
	Arch string `json:"arch"`
	// Benchtime is the -benchtime value the suite ran with.
	Benchtime  string  `json:"benchtime"`
	Benchmarks []Entry `json:"benchmarks"`
}

// Entry is one benchmark's result.
type Entry struct {
	Name string `json:"name"`
	// N is the iteration count the framework settled on.
	N int `json:"n"`
	// NsPerOp, AllocsPerOp, and BytesPerOp are the standard Go benchmark
	// measures.
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// Metrics carries b.ReportMetric extras (e.g. "events/s").
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		benchtime = flag.String("benchtime", "1s", "per-benchmark budget, as a duration or Nx iteration count")
		out       = flag.String("out", "", "output path (default BENCH_<date>.json in the current directory)")
		label     = flag.String("label", "", "snapshot label recorded in the JSON (e.g. baseline)")
		date      = flag.String("date", "", "override the snapshot date (YYYY-MM-DD; default today)")
		runExpr   = flag.String("run", "", "only run cases whose name matches this regexp")
		list      = flag.Bool("list", false, "print the case names and exit")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rbbench: unexpected arguments %v\n", flag.Args())
		return 2
	}
	if *list {
		for _, c := range bench.Cases() {
			fmt.Println(c.Name)
		}
		return 0
	}
	var filter *regexp.Regexp
	if *runExpr != "" {
		re, err := regexp.Compile(*runExpr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rbbench: bad -run %q: %v\n", *runExpr, err)
			return 2
		}
		filter = re
	}
	// testing.Benchmark sizes runs from the test framework's benchtime
	// flag; register the testing flags so it can be set outside a test
	// binary.
	testing.Init()
	if err := flag.Set("test.benchtime", *benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "rbbench: bad -benchtime %q: %v\n", *benchtime, err)
		return 2
	}

	snap := Snapshot{
		Date:      *date,
		Label:     *label,
		Go:        runtime.Version(),
		OS:        runtime.GOOS,
		Arch:      runtime.GOARCH,
		Benchtime: *benchtime,
	}
	if snap.Date == "" {
		snap.Date = time.Now().Format("2006-01-02")
	}
	for _, c := range bench.Cases() {
		if filter != nil && !filter.MatchString(c.Name) {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", c.Name)
		r := testing.Benchmark(c.F)
		if r.N == 0 {
			fmt.Fprintf(os.Stderr, "rbbench: %s failed (see output above)\n", c.Name)
			return 1
		}
		e := Entry{
			Name:        c.Name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if len(r.Extra) > 0 {
			e.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				e.Metrics[k] = v
			}
		}
		snap.Benchmarks = append(snap.Benchmarks, e)
		fmt.Fprintf(os.Stderr, "  %d iters, %.0f ns/op, %d allocs/op, %d B/op\n",
			e.N, e.NsPerOp, e.AllocsPerOp, e.BytesPerOp)
	}
	if len(snap.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "rbbench: no benchmarks matched")
		return 2
	}

	path := *out
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", snap.Date)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbbench:", err)
		return 1
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(snap)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbbench:", err)
		return 1
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(snap.Benchmarks))
	return 0
}
