// Command rblint runs the repository's protocol-aware static analysis
// suite (internal/analysis) over the given package patterns and exits
// non-zero when any finding survives the //rblint:ignore directives.
//
// Usage:
//
//	go run ./cmd/rblint ./...
//	go run ./cmd/rblint -json ./...
//	go run ./cmd/rblint -sarif out.sarif ./...
//	go run ./cmd/rblint -baseline .rblint-baseline.json ./...
//	go run ./cmd/rblint -baseline .rblint-baseline.json -write-baseline ./...
//	go run ./cmd/rblint -fix ./...
//	go run ./cmd/rblint -as rbcast/internal/udp ./internal/analysis/testdata/broken
//
// With no patterns, ./... is analyzed. With -as, exactly one package
// directory is analyzed in isolation, type-checked under the given
// import path — the fixture mode `make lint-selftest` uses to prove the
// path-scoped analyzers still produce findings. With -baseline, findings already
// recorded in the baseline file are reported as "baselined" but do not
// fail the run — only new findings do. -write-baseline rewrites the
// baseline to accept the current findings. -fix applies suggested fixes
// (currently: deleting stale //rblint:ignore directives) in place.
//
// Exit status: 0 when clean (or all findings baselined / fixed), 1 when
// new findings remain, 2 on operational error. See
// internal/analysis/README.md for the analyzer catalog and the
// ignore-directive syntax.
package main

import (
	"flag"
	"fmt"
	"go/token"
	"os"

	"rbcast/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	jsonOut := flag.Bool("json", false, "write findings as JSON to stdout")
	sarifPath := flag.String("sarif", "", "write a SARIF 2.1.0 log to `file` (\"-\" for stdout)")
	baselinePath := flag.String("baseline", "", "fail only on findings not recorded in the baseline `file`")
	asPath := flag.String("as", "", "check a single package directory under this import `path` (fixture runs)")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the -baseline file to accept current findings")
	fix := flag.Bool("fix", false, "apply suggested fixes in place")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rblint [flags] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(flag.CommandLine.Output(), "\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *writeBaseline && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "rblint: -write-baseline requires -baseline")
		os.Exit(2)
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rblint:", err)
		os.Exit(2)
	}
	var (
		diags   []analysis.Diagnostic
		fset    *token.FileSet
		modRoot string
	)
	if *asPath != "" {
		if flag.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "rblint: -as takes exactly one package directory")
			os.Exit(2)
		}
		diags, fset, modRoot, err = analysis.RunDir(flag.Arg(0), *asPath)
	} else {
		diags, fset, modRoot, err = analysis.Run(wd, flag.Args()...)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "rblint:", err)
		os.Exit(2)
	}

	if *fix {
		applied, err := analysis.ApplyFixes(fset, diags)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rblint:", err)
			os.Exit(2)
		}
		if applied > 0 {
			fmt.Fprintf(os.Stderr, "rblint: applied %d suggested fix(es); re-run to see remaining findings\n", applied)
		}
	}

	// SARIF always carries the full finding set — code-scanning UIs do
	// their own baseline bookkeeping against it.
	if *sarifPath != "" {
		out := os.Stdout
		if *sarifPath != "-" {
			f, err := os.Create(*sarifPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rblint:", err)
				os.Exit(2)
			}
			defer f.Close()
			out = f
		}
		if err := analysis.WriteSARIF(out, fset, modRoot, diags); err != nil {
			fmt.Fprintln(os.Stderr, "rblint:", err)
			os.Exit(2)
		}
	}

	if *writeBaseline {
		if err := analysis.WriteBaseline(*baselinePath, fset, modRoot, diags); err != nil {
			fmt.Fprintln(os.Stderr, "rblint:", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "rblint: wrote %s (%d finding(s) accepted)\n", *baselinePath, len(diags))
		return
	}

	fresh, known := diags, []analysis.Diagnostic(nil)
	if *baselinePath != "" {
		baseline, err := analysis.LoadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rblint:", err)
			os.Exit(2)
		}
		fresh, known = baseline.Filter(fset, modRoot, diags)
	}

	if *jsonOut {
		if err := analysis.WriteJSON(os.Stdout, fset, modRoot, fresh); err != nil {
			fmt.Fprintln(os.Stderr, "rblint:", err)
			os.Exit(2)
		}
	} else {
		analysis.Print(os.Stdout, fset, fresh)
	}
	if len(known) > 0 {
		fmt.Fprintf(os.Stderr, "rblint: %d baselined finding(s) suppressed\n", len(known))
	}
	if len(fresh) > 0 {
		os.Exit(1)
	}
}
