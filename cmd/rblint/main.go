// Command rblint runs the repository's protocol-aware static analysis
// suite (internal/analysis) over the given package patterns and exits
// non-zero when any finding survives the //rblint:ignore directives.
//
// Usage:
//
//	go run ./cmd/rblint ./...
//	go run ./cmd/rblint internal/core internal/wire/...
//
// With no patterns, ./... is analyzed. See internal/analysis/README.md
// for the analyzer catalog and the ignore-directive syntax.
package main

import (
	"flag"
	"fmt"
	"os"

	"rbcast/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: rblint [-list] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Analyzers:\n")
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(flag.CommandLine.Output(), "  %-10s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rblint:", err)
		os.Exit(2)
	}
	diags, fset, err := analysis.Run(wd, flag.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rblint:", err)
		os.Exit(2)
	}
	if len(diags) > 0 {
		analysis.Print(os.Stdout, fset, diags)
		os.Exit(1)
	}
}
