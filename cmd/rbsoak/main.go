// Command rbsoak sweeps thousands of seeded random broadcast scenarios
// through the full invariant suite, in parallel, and reports every
// failing seed with a shrunk reproduction and a replay command line.
//
// Usage examples:
//
//	rbsoak                                  # 1000 mixed seeds, all cores
//	rbsoak -class partition -count 5000
//	rbsoak -class churn -budget 30s -csv churn.csv
//	rbsoak -class partition-trap -count 5   # watch the engine catch bugs
//	rbsoak -class mixed -seeds 81 -count 1 -workers 1 -v
//	rbsoak -count 200 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Per-seed results are byte-identical regardless of -workers; only wall
// time changes. The exit status is 0 when every seed passed, 1 when any
// failed, 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"rbcast/internal/soak"
)

func main() {
	os.Exit(run())
}

// classList renders the registered classes for the -class usage string,
// so new classes show up in -h without touching this file.
func classList() string {
	names := make([]string, 0, len(soak.Classes()))
	for _, c := range soak.Classes() {
		names = append(names, string(c))
	}
	return strings.Join(names, "|")
}

func run() int {
	var (
		class   = flag.String("class", "mixed", "scenario class: "+classList())
		seeds   = flag.Int64("seeds", 1, "first seed of the sweep")
		count   = flag.Int("count", 1000, "number of consecutive seeds to run")
		workers = flag.Int("workers", 0, "worker pool size (0 = all cores)")
		shards  = flag.Int("shards", 0, "per-scenario parallel shard workers (0 = sequential engine)")
		budget  = flag.Duration("budget", 0, "wall-clock budget; stops dispatching new seeds once exceeded (0 = none)")
		csvFile = flag.String("csv", "", "write per-seed results as CSV to this file")
		jsFile  = flag.String("json", "", "write the full summary (specs included) as JSON to this file")
		shrink  = flag.Bool("shrink", true, "shrink failing seeds to minimal reproducing specs")
		verbose = flag.Bool("v", false, "print each seed's result as it completes")
		cpuProf = flag.String("cpuprofile", "", "write a CPU profile of the sweep to this file (inspect with `go tool pprof`)")
		memProf = flag.String("memprofile", "", "write a heap profile at exit to this file (inspect with `go tool pprof`)")
	)
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "rbsoak: unexpected arguments %v\n", flag.Args())
		return 2
	}
	cls, err := soak.ParseClass(*class)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbsoak:", err)
		return 2
	}
	if *count < 1 {
		fmt.Fprintf(os.Stderr, "rbsoak: -count %d, want >= 1\n", *count)
		return 2
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rbsoak:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "rbsoak:", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer writeMemProfile("rbsoak", *memProf)

	cfg := soak.Config{
		Class:     cls,
		SeedStart: *seeds,
		Seeds:     *count,
		Workers:   *workers,
		Shards:    *shards,
		Budget:    *budget,
	}
	if !*verbose && *count > 1 {
		cfg.Progress = func(done, failed int) {
			if done%100 == 0 || done == *count {
				fmt.Fprintf(os.Stderr, "\r%d/%d seeds, %d failed", done, *count, failed)
				if done == *count {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	sum, err := soak.Run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbsoak:", err)
		return 2
	}
	if *verbose {
		for _, r := range sum.Reports {
			status := "pass"
			if !r.Pass {
				status = "FAIL"
			}
			fmt.Printf("seed %d: %s (%d hosts, %d msgs, delivered %d/%d, %d events)\n",
				r.Seed, status, r.Hosts, r.Messages, r.Delivered, r.Expected, r.EventsRun)
			for _, v := range r.Violations {
				fmt.Printf("  violation: %s\n", v)
			}
		}
	}
	fmt.Println(sum.Table())

	if *csvFile != "" {
		if err := writeFile(*csvFile, sum.WriteCSV); err != nil {
			fmt.Fprintln(os.Stderr, "rbsoak:", err)
			return 1
		}
		fmt.Printf("per-seed results written to %s\n", *csvFile)
	}
	if *jsFile != "" {
		if err := writeFile(*jsFile, sum.WriteJSON); err != nil {
			fmt.Fprintln(os.Stderr, "rbsoak:", err)
			return 1
		}
		fmt.Printf("summary written to %s\n", *jsFile)
	}

	failures := sum.Failures()
	if len(failures) == 0 {
		return 0
	}
	fmt.Printf("\n%d failing seed(s):\n", len(failures))
	for _, f := range failures {
		var sh *soak.ShrinkResult
		if *shrink {
			r := soak.Shrink(soak.NewSpec(cls, f.Seed), 0)
			sh = &r
		}
		fmt.Print(soak.FailureText(cls, f, sh))
	}
	return 1
}

// writeMemProfile dumps a post-GC heap profile, best-effort.
func writeMemProfile(tool, path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	}
}

func writeFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = write(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
