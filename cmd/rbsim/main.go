// Command rbsim runs one broadcast simulation and prints its metrics.
//
// Usage examples:
//
//	rbsim -clusters 4 -hosts 3 -messages 50
//	rbsim -proto basic -shape chain -wan-loss 0.25
//	rbsim -partition 2:5s:25s -messages 40 -trace 30
//	rbsim -messages 500 -cpuprofile cpu.pprof -memprofile mem.pprof
//
// The simulation is deterministic for a given -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"rbcast/internal/harness"
	"rbcast/internal/netsim"
	"rbcast/internal/sim"
	"rbcast/internal/topo"
	"rbcast/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		clusters  = flag.Int("clusters", 3, "number of clusters")
		hosts     = flag.Int("hosts", 3, "hosts per cluster")
		shape     = flag.String("shape", "tree", "WAN shape: star|chain|tree|mesh|ring")
		proto     = flag.String("proto", "tree", "protocol: tree|basic")
		messages  = flag.Int("messages", 20, "number of broadcast messages")
		interval  = flag.Duration("interval", 200*time.Millisecond, "time between broadcasts")
		seed      = flag.Int64("seed", 1, "simulation seed")
		shards    = flag.Int("shards", 0, "parallel shard workers (0 = sequential engine; any positive count gives identical results)")
		cheapLoss = flag.Float64("lan-loss", 0, "loss probability on cheap links")
		wanLoss   = flag.Float64("wan-loss", 0, "loss probability on expensive links")
		partition = flag.String("partition", "", "cluster:start:end, e.g. 2:5s:25s")
		drain     = flag.Duration("drain", 30*time.Second, "extra time after the last broadcast")
		traceN    = flag.Int("trace", 0, "print the last N protocol events")
		full      = flag.Bool("full-horizon", false, "run the whole horizon even after completion")
		dotFile   = flag.String("dot", "", "write the final parent graph as Graphviz DOT to this file")
		csvFile   = flag.String("csv", "", "write the per-delivery timeline as CSV to this file")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the run to this file (inspect with `go tool pprof`)")
		memProf   = flag.String("memprofile", "", "write a heap profile at exit to this file (inspect with `go tool pprof`)")
	)
	flag.Parse()
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rbsim:", err)
			return 2
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "rbsim:", err)
			return 2
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	defer writeMemProfile(*memProf)

	shapes := map[string]topo.WANShape{
		"star": topo.WANStar, "chain": topo.WANChain, "tree": topo.WANTree,
		"mesh": topo.WANMesh, "ring": topo.WANRing,
	}
	wanShape, ok := shapes[strings.ToLower(*shape)]
	if !ok {
		fmt.Fprintf(os.Stderr, "rbsim: unknown shape %q\n", *shape)
		return 2
	}
	var protocol harness.Protocol
	switch strings.ToLower(*proto) {
	case "tree":
		protocol = harness.ProtocolTree
	case "basic":
		protocol = harness.ProtocolBasic
	default:
		fmt.Fprintf(os.Stderr, "rbsim: unknown protocol %q\n", *proto)
		return 2
	}

	var events []harness.TimedEvent
	if *partition != "" {
		ev, err := parsePartition(*partition)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rbsim:", err)
			return 2
		}
		events = ev
	}

	buf := trace.NewBuffer(4096)
	scenario := harness.Scenario{
		Name:   "rbsim",
		Seed:   *seed,
		Shards: *shards,
		Build: func(eng sim.Loop) (*topo.Topology, error) {
			return topo.Clustered(eng, topo.ClusteredConfig{
				Clusters:        *clusters,
				HostsPerCluster: *hosts,
				Shape:           wanShape,
				Cheap:           netsim.LinkConfig{Class: netsim.Cheap, LossProb: *cheapLoss},
				Expensive:       netsim.LinkConfig{Class: netsim.Expensive, LossProb: *wanLoss},
			})
		},
		Protocol:         protocol,
		Messages:         *messages,
		MsgInterval:      *interval,
		Drain:            *drain,
		Events:           events,
		StopWhenComplete: !*full,
		CollectEvents:    *traceN > 0,
	}
	rt, err := harness.Prepare(scenario)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbsim:", err)
		return 1
	}
	res, err := rt.Finish()
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbsim:", err)
		return 1
	}
	fmt.Println(res.Summary())
	if *csvFile != "" {
		f, err := os.Create(*csvFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "rbsim: creating csv:", err)
			return 1
		}
		err = res.WriteDeliveryCSV(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "rbsim: writing csv:", err)
			return 1
		}
		fmt.Printf("delivery timeline written to %s\n", *csvFile)
	}
	if *dotFile != "" && protocol == harness.ProtocolTree {
		if err := os.WriteFile(*dotFile, []byte(rt.ParentGraphDOT()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "rbsim: writing dot:", err)
			return 1
		}
		fmt.Printf("parent graph written to %s\n", *dotFile)
	}
	if len(res.EventErrors) > 0 {
		fmt.Fprintf(os.Stderr, "rbsim: scheduled event errors: %v\n", res.EventErrors)
	}
	if *traceN > 0 {
		for _, ev := range res.Events {
			buf.Add(trace.FromEvent(ev))
		}
		entries := buf.Entries()
		if len(entries) > *traceN {
			entries = entries[len(entries)-*traceN:]
		}
		fmt.Printf("last %d protocol events:\n", len(entries))
		for _, e := range entries {
			fmt.Println(" ", e)
		}
	}
	if !res.Complete {
		fmt.Fprintf(os.Stderr, "rbsim: incomplete delivery (%d/%d)\n",
			res.DeliveredCount, res.ExpectedCount)
		return 1
	}
	return 0
}

// parsePartition turns "cluster:start:end" into isolate/restore events.
func parsePartition(s string) ([]harness.TimedEvent, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return nil, fmt.Errorf("bad -partition %q, want cluster:start:end", s)
	}
	var cluster int
	if _, err := fmt.Sscanf(parts[0], "%d", &cluster); err != nil {
		return nil, fmt.Errorf("bad -partition cluster %q: %w", parts[0], err)
	}
	start, err := time.ParseDuration(parts[1])
	if err != nil {
		return nil, fmt.Errorf("bad -partition start: %w", err)
	}
	end, err := time.ParseDuration(parts[2])
	if err != nil {
		return nil, fmt.Errorf("bad -partition end: %w", err)
	}
	if end <= start {
		return nil, fmt.Errorf("-partition end %v not after start %v", end, start)
	}
	return []harness.TimedEvent{
		{At: start, Do: func(rt *harness.Runtime) error {
			_, err := rt.Topo.IsolateCluster(cluster)
			return err
		}},
		{At: end, Do: func(rt *harness.Runtime) error {
			return rt.Topo.RestoreLinks(rt.Topo.WANLinksOfCluster(cluster))
		}},
	}, nil
}

// writeMemProfile dumps a post-GC heap profile, best-effort.
func writeMemProfile(path string) {
	if path == "" {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rbsim:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "rbsim:", err)
	}
}
