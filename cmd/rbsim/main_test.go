package main

import (
	"testing"
	"time"
)

func TestParsePartition(t *testing.T) {
	events, err := parsePartition("2:5s:25s")
	if err != nil {
		t.Fatalf("parsePartition: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	if events[0].At != 5*time.Second || events[1].At != 25*time.Second {
		t.Errorf("event times = %v, %v", events[0].At, events[1].At)
	}
}

func TestParsePartitionRejectsBadInput(t *testing.T) {
	for _, bad := range []string{
		"",
		"2",
		"2:5s",
		"x:5s:25s",
		"2:banana:25s",
		"2:5s:banana",
		"2:25s:5s", // end before start
		"2:5s:5s",  // zero-length window
	} {
		if _, err := parsePartition(bad); err == nil {
			t.Errorf("parsePartition(%q) succeeded, want error", bad)
		}
	}
}
