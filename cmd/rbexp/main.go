// Command rbexp regenerates the paper's evaluation: it runs every
// experiment (or a selected subset) and prints the measured tables with
// machine-checked verdicts.
//
// Usage:
//
//	rbexp [-seed N] [-list] [id ...]
//
// With no ids, every experiment runs in paper order.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"rbcast/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	seed := flag.Int64("seed", 1, "simulation seed")
	seeds := flag.Int("seeds", 1, "run each experiment under this many consecutive seeds and report the pass rate")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, r := range experiments.All() {
			fmt.Printf("%-5s %s\n", r.ID, r.Title)
		}
		return 0
	}

	runners := experiments.All()
	if args := flag.Args(); len(args) > 0 {
		runners = runners[:0]
		for _, id := range args {
			r, ok := experiments.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "rbexp: unknown experiment %q (try -list)\n", id)
				return 2
			}
			runners = append(runners, r)
		}
	}

	if *seeds > 1 {
		return runSweep(runners, *seed, *seeds)
	}
	failures := 0
	for _, r := range runners {
		start := time.Now()
		rep, err := r.Run(*seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rbexp: %s failed to run: %v\n", r.ID, err)
			failures++
			continue
		}
		fmt.Println(rep.Render())
		fmt.Printf("  (wall clock: %v)\n\n", time.Since(start).Round(time.Millisecond))
		if rep.Check() != nil {
			failures++
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "rbexp: %d experiment(s) failed\n", failures)
		return 1
	}
	return 0
}

// runSweep re-runs every experiment under consecutive seeds, reporting
// only the verdicts — a robustness check that the reproduced claims are
// not seed luck.
func runSweep(runners []experiments.Runner, base int64, n int) int {
	failures := 0
	fmt.Printf("%-6s %-7s %s\n", "id", "passed", "failing seeds")
	for _, r := range runners {
		passed := 0
		var bad []int64
		for i := 0; i < n; i++ {
			seed := base + int64(i)
			rep, err := r.Run(seed)
			if err == nil && rep.Check() == nil {
				passed++
				continue
			}
			bad = append(bad, seed)
		}
		mark := ""
		if passed != n {
			failures++
			mark = fmt.Sprintf("%v", bad)
		}
		fmt.Printf("%-6s %d/%d     %s\n", r.ID, passed, n, mark)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "rbexp: %d experiment(s) failed under the sweep\n", failures)
		return 1
	}
	return 0
}
