package rbcast_test

import (
	"fmt"
	"time"

	"rbcast"
)

// ExampleSimulate runs a deterministic broadcast simulation and reports
// the paper's headline cost metric.
func ExampleSimulate() {
	res, err := rbcast.Simulate(rbcast.SimulationConfig{
		Clusters:        4,
		HostsPerCluster: 3,
		Messages:        30,
		Seed:            42,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("complete: %v\n", res.Complete)
	fmt.Printf("inter-cluster data transmissions per message ≈ k-1: %v\n",
		res.InterClusterDataPerMessage() < 4.5)
	// Output:
	// complete: true
	// inter-cluster data transmissions per message ≈ k-1: true
}

// ExampleStartFleet broadcasts over a live goroutine-per-host fleet.
func ExampleStartFleet() {
	fleet, err := rbcast.StartFleet(rbcast.FleetConfig{
		Hosts:  []rbcast.HostID{1, 2, 3},
		Source: 1,
		Seed:   1,
	})
	if err != nil {
		panic(err)
	}
	defer fleet.Stop()
	seq, err := fleet.Broadcast([]byte("hello"))
	if err != nil {
		panic(err)
	}
	fmt.Println("delivered everywhere:", fleet.WaitDelivered(seq, 10*time.Second))
	// Output:
	// delivered everywhere: true
}

// ExampleNewReplicaStore shows the motivating application: updates merge
// commutatively, so any delivery order converges.
func ExampleNewReplicaStore() {
	a := rbcast.NewReplicaStore()
	b := rbcast.NewReplicaStore()
	u1 := rbcast.ReplicaUpdate{Key: "color", Value: "red", Stamp: 1, Origin: 1}
	u2 := rbcast.ReplicaUpdate{Key: "color", Value: "blue", Stamp: 2, Origin: 1}
	// Replica a sees u1 then u2; replica b sees them reversed.
	a.Apply(u1)
	a.Apply(u2)
	b.Apply(u2)
	b.Apply(u1)
	va, _ := a.Get("color")
	vb, _ := b.Get("color")
	fmt.Println(va, vb, a.Fingerprint() == b.Fingerprint())
	// Output:
	// blue blue true
}
