package rbcast

import (
	"fmt"
	"time"

	"rbcast/internal/harness"
	"rbcast/internal/netsim"
	"rbcast/internal/sim"
	"rbcast/internal/topo"
)

// Algorithm selects which broadcast algorithm a simulation runs.
type Algorithm int

const (
	// AlgorithmTree is the paper's protocol.
	AlgorithmTree Algorithm = iota + 1
	// AlgorithmBasic is the paper's §1 baseline: the source sends an
	// individually addressed copy to every host and retries until acked.
	AlgorithmBasic
)

// WANShape selects how simulated clusters interconnect.
type WANShape = topo.WANShape

// WAN shapes.
const (
	WANStar  = topo.WANStar
	WANChain = topo.WANChain
	WANTree  = topo.WANTree
	WANMesh  = topo.WANMesh
	WANRing  = topo.WANRing
)

// SimulationConfig describes a deterministic broadcast simulation over a
// generated clustered topology.
type SimulationConfig struct {
	// Clusters and HostsPerCluster size the network (defaults 3 × 3).
	Clusters        int
	HostsPerCluster int
	// Shape is the WAN interconnect (default WANTree).
	Shape WANShape
	// Algorithm selects tree or basic (default AlgorithmTree).
	Algorithm Algorithm
	// Messages is the number of broadcasts (default 20); MsgInterval
	// separates them (default 200 ms).
	Messages    int
	MsgInterval time.Duration
	// Seed makes the run reproducible.
	Seed int64
	// Params tunes the tree protocol (zero value: DefaultParams).
	Params Params
	// CheapLossProb and ExpensiveLossProb inject message loss.
	CheapLossProb     float64
	ExpensiveLossProb float64
	// RunFullHorizon keeps simulating after every message is delivered
	// (by default the run stops at completion).
	RunFullHorizon bool
	// Partition optionally isolates one generated cluster for a window of
	// virtual time.
	Partition *PartitionSpec
	// Drain bounds the extra virtual time after the last broadcast (and
	// after the partition heals); zero uses the harness default of 30 s.
	Drain time.Duration
}

// PartitionSpec isolates generated cluster Cluster (0-based) from At
// until HealAt.
type PartitionSpec struct {
	Cluster int
	At      time.Duration
	HealAt  time.Duration
}

// Result is everything a simulation measured. See the methods on
// harness.Result — notably Summary, DeliveryRatio, Delays, and
// InterClusterDataPerMessage — all available through this alias.
type Result = harness.Result

// Simulate runs one deterministic broadcast simulation and returns its
// measurements.
func Simulate(cfg SimulationConfig) (*Result, error) {
	if cfg.Clusters == 0 {
		cfg.Clusters = 3
	}
	if cfg.HostsPerCluster == 0 {
		cfg.HostsPerCluster = 3
	}
	if cfg.Messages == 0 {
		cfg.Messages = 20
	}
	if cfg.Algorithm == 0 {
		cfg.Algorithm = AlgorithmTree
	}
	var proto harness.Protocol
	switch cfg.Algorithm {
	case AlgorithmTree:
		proto = harness.ProtocolTree
	case AlgorithmBasic:
		proto = harness.ProtocolBasic
	default:
		return nil, fmt.Errorf("rbcast: unknown algorithm %d", cfg.Algorithm)
	}
	build := func(eng sim.Loop) (*topo.Topology, error) {
		return topo.Clustered(eng, topo.ClusteredConfig{
			Clusters:        cfg.Clusters,
			HostsPerCluster: cfg.HostsPerCluster,
			Shape:           cfg.Shape,
			Cheap:           netsim.LinkConfig{Class: netsim.Cheap, LossProb: cfg.CheapLossProb},
			Expensive:       netsim.LinkConfig{Class: netsim.Expensive, LossProb: cfg.ExpensiveLossProb},
		})
	}
	var events []harness.TimedEvent
	if p := cfg.Partition; p != nil {
		if p.HealAt <= p.At {
			return nil, fmt.Errorf("rbcast: partition heals at %v, before it starts at %v", p.HealAt, p.At)
		}
		if p.Cluster < 0 || p.Cluster >= cfg.Clusters {
			return nil, fmt.Errorf("rbcast: partition cluster %d out of range [0,%d)", p.Cluster, cfg.Clusters)
		}
		events = append(events,
			harness.TimedEvent{At: p.At, Do: func(rt *harness.Runtime) error {
				_, err := rt.Topo.IsolateCluster(p.Cluster)
				return err
			}},
			harness.TimedEvent{At: p.HealAt, Do: func(rt *harness.Runtime) error {
				return rt.Topo.RestoreLinks(rt.Topo.WANLinksOfCluster(p.Cluster))
			}},
		)
	}
	return harness.Run(harness.Scenario{
		Name:             fmt.Sprintf("simulate-%dx%d", cfg.Clusters, cfg.HostsPerCluster),
		Seed:             cfg.Seed,
		Build:            build,
		Protocol:         proto,
		Params:           cfg.Params,
		Messages:         cfg.Messages,
		MsgInterval:      cfg.MsgInterval,
		Events:           events,
		Drain:            cfg.Drain,
		StopWhenComplete: !cfg.RunFullHorizon,
	})
}
