// Tuning example: the §6 reliability/cost dial, explored via the public
// API.
//
// The paper ends on a trade-off: INFO exchange, parent-pointer exchange,
// and gap-filling frequencies can be "tuned according to specific
// cost-reliability requirements". This example sweeps a single scale
// factor over all cross-cluster exchange periods and reports, for a
// partition-then-heal scenario, how quickly the cut-off cluster recovers
// its backlog and what the control traffic costs — letting an operator
// pick a point on the curve.
package main

import (
	"fmt"
	"log"
	"time"

	"rbcast"
)

func main() {
	const healAt = 10 * time.Second
	fmt.Println("2 clusters × 3 hosts; cluster 1 partitioned during all 12 broadcasts,")
	fmt.Printf("healed at t=%v; sweeping exchange-period scale\n\n", healAt)
	fmt.Printf("%-8s %-14s %-16s %s\n", "scale", "recovery time", "control sends", "verdict")

	for _, scale := range []float64{0.25, 0.5, 1, 2, 4} {
		p := rbcast.DefaultParams()
		mul := func(d time.Duration) time.Duration { return time.Duration(float64(d) * scale) }
		p.AttachPeriod = mul(p.AttachPeriod)
		p.InfoRemotePeriod = mul(p.InfoRemotePeriod)
		p.InfoGlobalPeriod = mul(p.InfoGlobalPeriod)
		p.GapRemotePeriod = mul(p.GapRemotePeriod)
		p.GapGlobalPeriod = mul(p.GapGlobalPeriod)
		if pt := mul(p.ParentTimeout); pt > p.ParentTimeout {
			p.ParentTimeout = pt
		}

		res, err := rbcast.Simulate(rbcast.SimulationConfig{
			Clusters:        2,
			HostsPerCluster: 3,
			Messages:        12,
			MsgInterval:     200 * time.Millisecond,
			Seed:            5,
			Params:          p,
			Partition: &rbcast.PartitionSpec{
				Cluster: 1,
				At:      2 * time.Second,
				HealAt:  healAt,
			},
			Drain:          60 * time.Second,
			RunFullHorizon: false,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Recovery time: when the last cut-off host (cluster 1 = hosts
		// 4..6) obtained the last backlog message, relative to the heal.
		var last time.Duration
		for _, h := range []rbcast.HostID{4, 5, 6} {
			for _, at := range res.DeliveredAt[h] {
				if at > last {
					last = at
				}
			}
		}
		verdict := "missed a 1s reconnection window"
		recovery := last - healAt
		if !res.Complete {
			fmt.Printf("%-8s %-14s %-16d %s\n",
				fmt.Sprintf("%.2fx", scale), "never", res.ControlSends(), "did not recover in time")
			continue
		}
		if recovery <= time.Second {
			verdict = "would catch a 1s reconnection window"
		}
		fmt.Printf("%-8s %-14v %-16d %s\n",
			fmt.Sprintf("%.2fx", scale), recovery.Round(time.Millisecond), res.ControlSends(), verdict)
	}

	fmt.Println("\nfaster exchange ⇒ shorter exposure to partitions, at a proportionally")
	fmt.Println("higher steady control-message cost — the paper's §6 trade-off")
}
