// Multi-source broadcast example (paper §2).
//
// "Here, we study only a single-source broadcast problem. However, a
// multiple-source broadcast can be performed reliably by running several
// identical single-source protocols."
//
// Three data centres each publish their own event stream; every host
// subscribes to all three. Each stream is an independent instance of the
// protocol — its own parent graph, INFO sets, and sequence numbers —
// multiplexed over one transport. The example shows all streams
// completing independently, including across a partition.
package main

import (
	"fmt"
	"log"
	"sync/atomic"
	"time"

	"rbcast"
)

func main() {
	clusters := [][]rbcast.HostID{{1, 2}, {3, 4}, {5, 6}}
	publishers := []rbcast.HostID{1, 3, 5} // one per data centre

	var deliveries atomic.Int64
	fleet, err := rbcast.StartFleet(rbcast.FleetConfig{
		Hosts:    []rbcast.HostID{1, 2, 3, 4, 5, 6},
		Source:   publishers[0],
		Sources:  publishers[1:],
		Clusters: clusters,
		Seed:     3,
		OnDeliver: func(host, stream rbcast.HostID, seq rbcast.Seq, _ []byte) {
			deliveries.Add(1)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Stop()

	fmt.Println("three publishers, six hosts, three clusters")
	const per = 5
	for i := 1; i <= per; i++ {
		for _, p := range publishers {
			payload := []byte(fmt.Sprintf("dc%d-event-%d", p, i))
			if _, err := fleet.BroadcastFrom(p, payload); err != nil {
				log.Fatal(err)
			}
		}
	}
	for _, p := range publishers {
		if !fleet.WaitStreamDelivered(p, per, 10*time.Second) {
			log.Fatalf("stream %d did not complete", p)
		}
		fmt.Printf("  stream from host %d: all %d events at every host\n", p, per)
	}

	fmt.Println("partitioning the third data centre and publishing more…")
	fleet.Transport.PartitionGroups(clusters)
	for i := per + 1; i <= 2*per; i++ {
		for _, p := range publishers {
			if _, err := fleet.BroadcastFrom(p, []byte(fmt.Sprintf("dc%d-event-%d", p, i))); err != nil {
				log.Fatal(err)
			}
		}
	}
	fmt.Println("healing…")
	fleet.Transport.HealAll()
	for _, p := range publishers {
		if !fleet.WaitStreamDelivered(p, 2*per, 15*time.Second) {
			log.Fatalf("stream %d did not recover", p)
		}
	}
	fmt.Printf("every stream recovered; %d total deliveries (6 hosts × 3 streams × %d events)\n",
		deliveries.Load(), 2*per)
}
