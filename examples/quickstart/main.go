// Quickstart: broadcast reliably two ways — a live in-process fleet and
// a deterministic simulation — using only the public rbcast API.
package main

import (
	"fmt"
	"log"
	"time"

	"rbcast"
)

func main() {
	liveFleet()
	simulation()
}

// liveFleet runs the protocol for real: one goroutine per host, binary
// frames on an in-memory transport, two clusters of hosts.
func liveFleet() {
	fmt.Println("== live fleet: 6 hosts, 2 clusters ==")
	fleet, err := rbcast.StartFleet(rbcast.FleetConfig{
		Hosts:  []rbcast.HostID{1, 2, 3, 4, 5, 6},
		Source: 1,
		Clusters: [][]rbcast.HostID{
			{1, 2, 3},
			{4, 5, 6},
		},
		Seed: 1,
		OnDeliver: func(host rbcast.HostID, _ rbcast.HostID, seq rbcast.Seq, payload []byte) {
			if host == 5 { // watch one remote host
				fmt.Printf("  host %d delivered #%d: %q\n", host, seq, payload)
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Stop()

	for i := 1; i <= 3; i++ {
		seq, err := fleet.Broadcast([]byte(fmt.Sprintf("update-%d", i)))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  source broadcast #%d\n", seq)
	}
	if !fleet.WaitDelivered(3, 10*time.Second) {
		log.Fatal("broadcast did not complete")
	}
	fmt.Println("  every host has every message")
	fmt.Println()
}

// simulation reruns the same idea deterministically at a larger scale
// and prints the paper's cost metrics.
func simulation() {
	fmt.Println("== deterministic simulation: 4 clusters × 3 hosts ==")
	res, err := rbcast.Simulate(rbcast.SimulationConfig{
		Clusters:        4,
		HostsPerCluster: 3,
		Messages:        30,
		Seed:            42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  delivered %d/%d (complete=%v) in %v of virtual time\n",
		res.DeliveredCount, res.ExpectedCount, res.Complete, res.CompletionAt)
	fmt.Printf("  inter-cluster data transmissions per message: %.2f (optimum k-1 = 3)\n",
		res.InterClusterDataPerMessage())
	fmt.Printf("  mean delivery delay: %v\n", res.Delays.Mean())
}
