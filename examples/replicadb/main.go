// Replicated database example — the paper's motivating application.
//
// §1 of the paper motivates the protocol with "management of highly
// available replicated databases": every replica must eventually receive
// every update, but updates need not arrive in dispatch order, because
// availability-first reconciliation schemes (DataPatch, log
// transformation) merge them commutatively.
//
// This example runs one primary and four replicas of rbcast's
// ReplicaStore — a last-writer-wins register map whose merge is
// commutative and idempotent — over a live fleet. A mid-stream partition
// demonstrates the reliability half: the cut replicas catch up entirely
// after the network heals, and every replica converges to the same
// fingerprint despite unordered delivery.
package main

import (
	"fmt"
	"log"
	"time"

	"rbcast"
)

func main() {
	hosts := []rbcast.HostID{1, 2, 3, 4, 5}
	stores := map[rbcast.HostID]*rbcast.ReplicaStore{}
	for _, h := range hosts {
		stores[h] = rbcast.NewReplicaStore()
	}

	clusters := [][]rbcast.HostID{{1, 2, 3}, {4, 5}}
	fleet, err := rbcast.StartFleet(rbcast.FleetConfig{
		Hosts:    hosts,
		Source:   1,
		Clusters: clusters,
		Seed:     7,
		OnDeliver: func(host, _ rbcast.HostID, _ rbcast.Seq, payload []byte) {
			u, err := rbcast.DecodeReplicaUpdate(payload)
			if err != nil {
				log.Printf("replica %d: bad update: %v", host, err)
				return
			}
			stores[host].Apply(u)
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer fleet.Stop()

	stamp := uint64(0)
	write := func(key, value string, del bool) {
		stamp++
		payload, err := rbcast.EncodeReplicaUpdate(rbcast.ReplicaUpdate{
			Key: key, Value: value, Stamp: stamp, Origin: 1, Delete: del,
		})
		if err != nil {
			log.Fatal(err)
		}
		if _, err := fleet.Broadcast(payload); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("writing 10 updates while all replicas are reachable…")
	for i := 0; i < 10; i++ {
		write(fmt.Sprintf("user:%d", i%4), fmt.Sprintf("v%d", stamp+1), false)
	}
	if !fleet.WaitDelivered(10, 10*time.Second) {
		log.Fatal("initial updates did not replicate")
	}

	fmt.Println("partitioning the second data centre (hosts 4, 5)…")
	fleet.Transport.PartitionGroups(clusters)
	for i := 0; i < 9; i++ {
		write(fmt.Sprintf("user:%d", i%4), fmt.Sprintf("v%d", stamp+1), false)
	}
	write("user:3", "", true) // a deletion rides the same stream
	time.Sleep(200 * time.Millisecond)
	fmt.Printf("  during the partition, replica 4 has applied %d of 20 updates\n",
		stores[4].Applied())

	fmt.Println("healing the partition…")
	fleet.Transport.HealAll()
	if !fleet.WaitDelivered(20, 15*time.Second) {
		log.Fatal("replicas did not catch up after the partition healed")
	}

	want := stores[1].Fingerprint()
	for _, h := range hosts {
		status := "CONVERGED"
		if stores[h].Fingerprint() != want {
			status = "DIVERGED"
		}
		fmt.Printf("  replica %d: %d updates applied, %d live keys — %s\n",
			h, stores[h].Applied(), stores[h].Len(), status)
		if status == "DIVERGED" {
			log.Fatalf("replica %d state %q != primary %q", h, stores[h].Fingerprint(), want)
		}
	}
	fmt.Println("all replicas converged to identical state despite unordered, partitioned delivery")
}
