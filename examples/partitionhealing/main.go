// Partition healing example: the §5 partition argument, measured.
//
// A three-cluster network loses its farthest cluster for twenty seconds
// of virtual time while the source keeps broadcasting. The example runs
// the same scenario under the paper's protocol and under the basic
// algorithm and prints what each wasted during the outage and how both
// recover after the repair — the tree shares redelivery among hosts,
// while the basic source pounds the partition with futile copies.
package main

import (
	"fmt"
	"log"
	"time"

	"rbcast"
)

func main() {
	fmt.Println("3 clusters × 2 hosts; cluster 2 unreachable from t=5s to t=25s; 40 messages")
	fmt.Println()
	for _, alg := range []struct {
		name string
		algo rbcast.Algorithm
	}{
		{"tree (paper protocol)", rbcast.AlgorithmTree},
		{"basic (per-host copies)", rbcast.AlgorithmBasic},
	} {
		res, err := rbcast.Simulate(rbcast.SimulationConfig{
			Clusters:        3,
			HostsPerCluster: 2,
			Shape:           rbcast.WANChain,
			Algorithm:       alg.algo,
			Messages:        40,
			MsgInterval:     250 * time.Millisecond,
			Seed:            11,
			Partition: &rbcast.PartitionSpec{
				Cluster: 2,
				At:      5 * time.Second,
				HealAt:  25 * time.Second,
			},
			Drain: 60 * time.Second,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", alg.name)
		fmt.Printf("  delivered:                 %d/%d (complete=%v)\n",
			res.DeliveredCount, res.ExpectedCount, res.Complete)
		fmt.Printf("  sends into the partition:  %d (of which %d were data copies)\n",
			res.UnreachableSends, res.UnreachableSendsByKind["data"])
		if res.Complete {
			fmt.Printf("  final catch-up finished:   t=%v (partition healed at t=25s)\n",
				res.CompletionAt)
		}
		// When did the cut-off hosts (5 and 6) get the first message that
		// was broadcast while they were unreachable?
		var probe rbcast.Seq
		for seq, at := range res.BroadcastAt {
			if at >= 5*time.Second && (probe == 0 || seq < probe) {
				probe = seq
			}
		}
		for _, h := range []rbcast.HostID{5, 6} {
			if at, ok := res.DeliveredAt[h][probe]; ok {
				fmt.Printf("  host %d received mid-outage message #%d at t=%v\n", h, probe, at)
			}
		}
		fmt.Println()
	}
	fmt.Println("both algorithms eventually deliver everything; the tree does it without")
	fmt.Println("hammering the partition, because fragments organize into their own trees")
	fmt.Println("and only roots probe for the repair (paper §5)")
}
