// UDP nodes example: the protocol on real sockets.
//
// Six hosts run on loopback UDP datagrams — genuine loss/reordering
// semantics, binary wire frames, and the paper's §2 timestamp-based cost
// classification standing in for a network cost bit. The source streams
// updates; a randomly chosen node is stopped cold mid-stream ("host
// crash": its socket goes silent) and the rest keep completing the
// broadcast among themselves.
package main

import (
	"fmt"
	"log"
	"time"

	"rbcast"
)

func main() {
	group, err := rbcast.StartUDPGroup(6, rbcast.Params{})
	if err != nil {
		log.Fatal(err)
	}
	defer group.Stop()

	fmt.Println("6 UDP nodes on loopback:")
	for id, node := range group.Nodes {
		fmt.Printf("  host %d at %s\n", id, node.Addr())
	}

	var last rbcast.Seq
	for i := 0; i < 15; i++ {
		seq, err := group.Broadcast([]byte(fmt.Sprintf("update-%d", i+1)))
		if err != nil {
			log.Fatal(err)
		}
		last = seq
	}
	if !group.WaitAll(last, 10*time.Second) {
		log.Fatal("broadcast incomplete")
	}
	fmt.Printf("all %d updates at every node\n", last)

	// Crash a non-source node mid-stream; the rest must still finish.
	victim := group.Nodes[4]
	fmt.Printf("stopping host %d cold…\n", victim.ID())
	victim.Stop()
	delete(group.Nodes, victim.ID())

	for i := 0; i < 10; i++ {
		if last, err = group.Broadcast([]byte("post-crash")); err != nil {
			log.Fatal(err)
		}
	}
	if !group.WaitAll(last, 10*time.Second) {
		log.Fatal("survivors did not complete the broadcast")
	}
	fmt.Printf("surviving nodes all reached message %d\n", last)

	for id, node := range group.Nodes {
		sent, received, decodeErrs, _ := node.Stats()
		fmt.Printf("  host %d: %d datagrams sent, %d received, %d decode errors\n",
			id, sent, received, decodeErrs)
	}
}
