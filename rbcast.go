// Package rbcast implements the reliable broadcast protocol of
// Garcia-Molina, Kogan & Lynch, "Reliable Broadcast in Networks with
// Nonprogrammable Servers" (ICDCS 1988), together with everything needed
// to evaluate it: a deterministic network simulator, the paper's baseline
// algorithm, a live goroutine runtime, and the full experiment suite.
//
// The protocol solves single-source broadcast in point-to-point networks
// whose servers offer unicast only (think 1988 ARPANET): hosts organize
// themselves into a dynamic parent graph rooted at the source, infer
// cluster membership from per-message cost bits, propagate data down the
// tree, and repair losses with multi-level gap filling. All delivery
// responsibility is shared — if the source disappears mid-broadcast, the
// hosts that already hold messages keep propagating them.
//
// # Three ways in
//
// Embed the protocol state machine over your own transport:
//
//	host, err := rbcast.NewHost(rbcast.Config{
//		ID: 2, Source: 1, Peers: []rbcast.HostID{1, 2, 3},
//	}, env) // env implements rbcast.Env
//	// Feed it: host.HandleMessage(now, from, costBit, msg)
//	// Clock it: host.Tick(now) every Params.TickInterval
//
// Run a live in-process fleet (goroutine per host, binary wire codec,
// injectable partitions):
//
//	fleet, err := rbcast.StartFleet(rbcast.FleetConfig{
//		Hosts: []rbcast.HostID{1, 2, 3, 4}, Source: 1,
//	})
//	defer fleet.Stop()
//	seq, err := fleet.Broadcast([]byte("update"))
//	fleet.WaitDelivered(seq, time.Second)
//
// Or simulate deterministically at scale (virtual time, reproducible by
// seed) and measure what the paper measures:
//
//	res, err := rbcast.Simulate(rbcast.SimulationConfig{
//		Clusters: 4, HostsPerCluster: 3, Messages: 50, Seed: 7,
//	})
//	fmt.Println(res.Summary())
//
// The full evaluation (Figures 3.1/3.2/4.1 and the §5/§6 performance
// claims) regenerates with cmd/rbexp; see EXPERIMENTS.md.
package rbcast

import (
	"rbcast/internal/core"
	"rbcast/internal/live"
	"rbcast/internal/multi"
	"rbcast/internal/replica"
	"rbcast/internal/seqset"
	"rbcast/internal/udp"
)

// HostID identifies a participating host; Nil means "no host".
type HostID = core.HostID

// Nil is the null host ID.
const Nil = core.Nil

// Seq is a broadcast sequence number (1-based).
type Seq = seqset.Seq

// SeqSet is an interval-coded set of sequence numbers (an INFO set).
type SeqSet = seqset.Set

// Message is a protocol message.
type Message = core.Message

// Protocol message kinds.
const (
	MsgData         = core.MsgData
	MsgInfo         = core.MsgInfo
	MsgAttachReq    = core.MsgAttachReq
	MsgAttachAccept = core.MsgAttachAccept
	MsgAttachReject = core.MsgAttachReject
	MsgDetach       = core.MsgDetach
)

// Host is the protocol state machine for one participant.
type Host = core.Host

// Config assembles a Host.
type Config = core.Config

// Params are the protocol tunables (§6 of the paper).
type Params = core.Params

// Env is the interface a Host uses to reach the world.
type Env = core.Env

// Event is an observable protocol event; Observer receives them.
type (
	Event    = core.Event
	Observer = core.Observer
)

// NewHost constructs a protocol host over a caller-supplied environment.
func NewHost(cfg Config, env Env) (*Host, error) { return core.NewHost(cfg, env) }

// DefaultParams returns the reference protocol tuning for simulated
// networks (1 ms LAN / 30 ms WAN scale).
func DefaultParams() Params { return core.DefaultParams() }

// Fleet is a running set of live protocol nodes (goroutine per host).
type Fleet = live.Fleet

// FleetConfig assembles a live fleet.
type FleetConfig = live.FleetConfig

// PathConfig describes one host-to-host path of the live transport.
type PathConfig = live.PathConfig

// StartFleet starts a live in-process deployment of the protocol.
func StartFleet(cfg FleetConfig) (*Fleet, error) { return live.StartFleet(cfg) }

// LiveParams returns protocol tunables scaled for in-memory paths.
func LiveParams() Params { return live.LiveParams() }

// Bus runs one protocol instance per broadcast source over a shared
// transport — the paper's §2 recipe for multiple-source broadcast. Use it
// to embed multi-source broadcast over your own transport; live fleets
// get the same capability via FleetConfig.Sources.
type Bus = multi.Bus

// BusConfig assembles a Bus.
type BusConfig = multi.Config

// BusEnv is the interface a Bus uses to reach the world.
type BusEnv = multi.Env

// NewBus constructs a multi-stream protocol bus over a caller-supplied
// environment.
func NewBus(cfg BusConfig, env BusEnv) (*Bus, error) { return multi.NewBus(cfg, env) }

// UDPNode runs one protocol host over a real UDP socket, classifying
// links by observed transit time (the paper's §2 timestamp alternative
// to a network-provided cost bit).
type UDPNode = udp.Node

// UDPNodeConfig assembles a UDPNode.
type UDPNodeConfig = udp.NodeConfig

// UDPGroup is a set of loopback UDP nodes for demos and tests.
type UDPGroup = udp.Group

// StartUDPNode binds a socket and starts one protocol host on it.
func StartUDPNode(cfg UDPNodeConfig) (*UDPNode, error) { return udp.StartNode(cfg) }

// StartUDPGroup starts n loopback UDP nodes with host 1 as the source.
// Zero params use loopback-scale defaults.
func StartUDPGroup(n int, params Params) (*UDPGroup, error) { return udp.StartGroup(n, params) }

// ReplicaStore is the paper's motivating application: a last-writer-wins
// replicated register map whose merge is commutative, associative, and
// idempotent — so the protocol's unordered delivery still converges every
// replica (feed broadcast payloads through DecodeReplicaUpdate and Apply).
type ReplicaStore = replica.Store

// ReplicaUpdate is one replicated write or deletion.
type ReplicaUpdate = replica.Update

// NewReplicaStore returns an empty replicated store.
func NewReplicaStore() *ReplicaStore { return replica.NewStore() }

// EncodeReplicaUpdate renders an update as a broadcast payload.
func EncodeReplicaUpdate(u ReplicaUpdate) ([]byte, error) { return replica.EncodeUpdate(u) }

// DecodeReplicaUpdate parses a broadcast payload back into an update.
func DecodeReplicaUpdate(data []byte) (ReplicaUpdate, error) { return replica.DecodeUpdate(data) }
