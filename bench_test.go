package rbcast_test

// One benchmark per reproduced figure/table: each regenerates the
// corresponding experiment end to end and fails if the paper's
// qualitative claim stops holding, so `go test -bench=.` doubles as a
// performance run and an evaluation re-check. The trailing benchmarks
// measure raw simulator and protocol throughput.

import (
	"testing"
	"time"

	"rbcast"
	"rbcast/internal/experiments"
	"rbcast/internal/harness"
	"rbcast/internal/sim"
	"rbcast/internal/topo"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	for i := 0; i < b.N; i++ {
		rep, err := r.Run(1)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Check(); err != nil {
			b.Fatalf("claim no longer holds: %v", err)
		}
	}
}

func BenchmarkFig31(b *testing.B)        { benchExperiment(b, "F3.1") }
func BenchmarkFig32(b *testing.B)        { benchExperiment(b, "F3.2") }
func BenchmarkFig41(b *testing.B)        { benchExperiment(b, "F4.1") }
func BenchmarkE1Cost(b *testing.B)       { benchExperiment(b, "E1") }
func BenchmarkE2Delay(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3Recovery(b *testing.B)   { benchExperiment(b, "E3") }
func BenchmarkE4Partition(b *testing.B)  { benchExperiment(b, "E4") }
func BenchmarkE5Congestion(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkE6Control(b *testing.B)    { benchExperiment(b, "E6") }
func BenchmarkE7Tradeoff(b *testing.B)   { benchExperiment(b, "E7") }
func BenchmarkE8Scale(b *testing.B)      { benchExperiment(b, "E8") }
func BenchmarkE9Cluster(b *testing.B)    { benchExperiment(b, "E9") }
func BenchmarkE10Piggyback(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11Multi(b *testing.B)     { benchExperiment(b, "E11") }

// BenchmarkSimulatorThroughput measures raw discrete-event throughput of
// a full protocol broadcast: simulated events per wall-clock second.
func BenchmarkSimulatorThroughput(b *testing.B) {
	var events uint64
	var virtual time.Duration
	for i := 0; i < b.N; i++ {
		rt, err := harness.Prepare(harness.Scenario{
			Seed: 1,
			Build: func(eng *sim.Engine) (*topo.Topology, error) {
				return topo.Clustered(eng, topo.ClusteredConfig{
					Clusters:        6,
					HostsPerCluster: 4,
					Shape:           topo.WANTree,
				})
			},
			Protocol:         harness.ProtocolTree,
			Messages:         30,
			MsgInterval:      150 * time.Millisecond,
			WarmUp:           3 * time.Second,
			StopWhenComplete: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := rt.Finish()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Complete {
			b.Fatalf("broadcast incomplete (%d/%d)", res.DeliveredCount, res.ExpectedCount)
		}
		events += rt.Engine.EventsRun()
		virtual += rt.Engine.Now()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/s")
	b.ReportMetric(virtual.Seconds()/b.Elapsed().Seconds()/float64(b.N), "virtual-s/wall-s")
}

// BenchmarkPublicSimulate measures the facade's end-to-end cost.
func BenchmarkPublicSimulate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := rbcast.Simulate(rbcast.SimulationConfig{
			Clusters:        3,
			HostsPerCluster: 3,
			Messages:        20,
			Seed:            1,
		})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Complete {
			b.Fatal("incomplete")
		}
	}
}

// BenchmarkLiveFleetBroadcast measures real-time end-to-end latency of a
// nine-host live fleet delivering a burst of ten messages.
func BenchmarkLiveFleetBroadcast(b *testing.B) {
	hosts := []rbcast.HostID{1, 2, 3, 4, 5, 6, 7, 8, 9}
	fleet, err := rbcast.StartFleet(rbcast.FleetConfig{
		Hosts:    hosts,
		Source:   1,
		Clusters: [][]rbcast.HostID{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}},
		Seed:     1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer fleet.Stop()
	b.ResetTimer()
	var total rbcast.Seq
	for i := 0; i < b.N; i++ {
		for j := 0; j < 10; j++ {
			seq, err := fleet.Broadcast([]byte("bench"))
			if err != nil {
				b.Fatal(err)
			}
			total = seq
		}
		if !fleet.WaitDelivered(total, 30*time.Second) {
			b.Fatal("burst not delivered")
		}
	}
}
