package rbcast_test

// One benchmark per reproduced figure/table: each regenerates the
// corresponding experiment end to end and fails if the paper's
// qualitative claim stops holding, so `go test -bench=.` doubles as a
// performance run and an evaluation re-check. The trailing benchmarks
// measure raw simulator and protocol throughput.

import (
	"fmt"
	"testing"

	"rbcast/internal/bench"
	"rbcast/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	r, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := r.Run(1)
		if err != nil {
			b.Fatal(err)
		}
		if err := rep.Check(); err != nil {
			b.Fatalf("claim no longer holds: %v", err)
		}
	}
}

func BenchmarkFig31(b *testing.B)        { benchExperiment(b, "F3.1") }
func BenchmarkFig32(b *testing.B)        { benchExperiment(b, "F3.2") }
func BenchmarkFig41(b *testing.B)        { benchExperiment(b, "F4.1") }
func BenchmarkE1Cost(b *testing.B)       { benchExperiment(b, "E1") }
func BenchmarkE2Delay(b *testing.B)      { benchExperiment(b, "E2") }
func BenchmarkE3Recovery(b *testing.B)   { benchExperiment(b, "E3") }
func BenchmarkE4Partition(b *testing.B)  { benchExperiment(b, "E4") }
func BenchmarkE5Congestion(b *testing.B) { benchExperiment(b, "E5") }
func BenchmarkE6Control(b *testing.B)    { benchExperiment(b, "E6") }
func BenchmarkE7Tradeoff(b *testing.B)   { benchExperiment(b, "E7") }
func BenchmarkE8Scale(b *testing.B)      { benchExperiment(b, "E8") }
func BenchmarkE9Cluster(b *testing.B)    { benchExperiment(b, "E9") }
func BenchmarkE10Piggyback(b *testing.B) { benchExperiment(b, "E10") }
func BenchmarkE11Multi(b *testing.B)     { benchExperiment(b, "E11") }

// The trailing benchmarks delegate to internal/bench so that
// `go test -bench` and the cmd/rbbench JSON snapshot runner measure
// exactly the same code.

func BenchmarkSimulatorThroughput(b *testing.B)  { bench.SimulatorThroughput(b) }
func BenchmarkPublicSimulate(b *testing.B)       { bench.PublicSimulate(b) }

func BenchmarkShardScaling(b *testing.B) {
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprint(shards), bench.ShardScaling(shards))
	}
}
func BenchmarkLiveFleetBroadcast(b *testing.B)   { bench.LiveFleetBroadcast(b) }
func BenchmarkEngineTimerChurn(b *testing.B)     { bench.EngineTimerChurn(b) }
func BenchmarkSeqsetDiff(b *testing.B)           { bench.SeqsetDiff(b) }
func BenchmarkWireEncodeInfo(b *testing.B)       { bench.WireEncodeInfo(b) }
func BenchmarkWireAppendEncodeInfo(b *testing.B) { bench.WireAppendEncodeInfo(b) }
func BenchmarkWireDecodeInfo(b *testing.B)       { bench.WireDecodeInfo(b) }
func BenchmarkWireCodecKinds(b *testing.B)       { bench.WireCodecKinds(b) }
func BenchmarkRBLintSuite(b *testing.B)          { bench.RBLintSuite(b) }
func BenchmarkCallGraph(b *testing.B)            { bench.CallGraph(b) }
