module rbcast

go 1.22
