package rbcast_test

import (
	"testing"
	"time"

	"rbcast"
)

func TestSimulateDefaults(t *testing.T) {
	res, err := rbcast.Simulate(rbcast.SimulationConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("default simulation incomplete: %d/%d", res.DeliveredCount, res.ExpectedCount)
	}
	if res.Hosts != 9 || res.Clusters != 3 || res.Messages != 20 {
		t.Errorf("defaults wrong: hosts=%d clusters=%d messages=%d", res.Hosts, res.Clusters, res.Messages)
	}
	if res.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestSimulateBasicAlgorithm(t *testing.T) {
	res, err := rbcast.Simulate(rbcast.SimulationConfig{
		Seed:      2,
		Algorithm: rbcast.AlgorithmBasic,
		Clusters:  2, HostsPerCluster: 2,
		Messages: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatal("basic simulation incomplete")
	}
	if res.SendsByKind["ack"] == 0 {
		t.Error("basic run recorded no acks")
	}
}

func TestSimulateWithLoss(t *testing.T) {
	res, err := rbcast.Simulate(rbcast.SimulationConfig{
		Seed:              3,
		Clusters:          2,
		HostsPerCluster:   3,
		Messages:          10,
		ExpensiveLossProb: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("lossy simulation incomplete: %d/%d", res.DeliveredCount, res.ExpectedCount)
	}
}

func TestSimulateRejectsBadAlgorithm(t *testing.T) {
	if _, err := rbcast.Simulate(rbcast.SimulationConfig{Algorithm: 42}); err == nil {
		t.Error("bad algorithm accepted")
	}
}

func TestSimulatePartitionValidation(t *testing.T) {
	if _, err := rbcast.Simulate(rbcast.SimulationConfig{
		Partition: &rbcast.PartitionSpec{Cluster: 0, At: 5 * time.Second, HealAt: 2 * time.Second},
	}); err == nil {
		t.Error("heal-before-cut partition accepted")
	}
	if _, err := rbcast.Simulate(rbcast.SimulationConfig{
		Clusters:  2,
		Partition: &rbcast.PartitionSpec{Cluster: 7, At: time.Second, HealAt: 2 * time.Second},
	}); err == nil {
		t.Error("out-of-range partition cluster accepted")
	}
}

func TestSimulateWithPartition(t *testing.T) {
	res, err := rbcast.Simulate(rbcast.SimulationConfig{
		Seed:            6,
		Clusters:        2,
		HostsPerCluster: 2,
		Messages:        10,
		MsgInterval:     200 * time.Millisecond,
		Partition: &rbcast.PartitionSpec{
			Cluster: 1,
			At:      time.Second,
			HealAt:  8 * time.Second,
		},
		Drain: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("partitioned simulation did not complete after heal: %d/%d",
			res.DeliveredCount, res.ExpectedCount)
	}
	if res.UnreachableSends == 0 {
		t.Error("no unreachable sends recorded during the partition")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	run := func() string {
		res, err := rbcast.Simulate(rbcast.SimulationConfig{Seed: 11, Messages: 10})
		if err != nil {
			t.Fatal(err)
		}
		return res.Summary()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same-seed simulations differ:\n%s\nvs\n%s", a, b)
	}
}

func TestPublicFleet(t *testing.T) {
	fleet, err := rbcast.StartFleet(rbcast.FleetConfig{
		Hosts:  []rbcast.HostID{1, 2, 3},
		Source: 1,
		Seed:   4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Stop()
	seq, err := fleet.Broadcast([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if !fleet.WaitDelivered(seq, 10*time.Second) {
		t.Fatal("live broadcast incomplete through public API")
	}
}

func TestPublicHostConstruction(t *testing.T) {
	env := nopEnv{}
	h, err := rbcast.NewHost(rbcast.Config{
		ID:     2,
		Source: 1,
		Peers:  []rbcast.HostID{1, 2, 3},
		Params: rbcast.DefaultParams(),
	}, env)
	if err != nil {
		t.Fatal(err)
	}
	if h.ID() != 2 || h.IsSource() {
		t.Errorf("host identity wrong: id=%d source=%v", h.ID(), h.IsSource())
	}
	if h.Parent() != rbcast.Nil {
		t.Errorf("fresh host has parent %d", h.Parent())
	}
}

type nopEnv struct{}

func (nopEnv) Send(rbcast.HostID, rbcast.Message) {}
func (nopEnv) Deliver(rbcast.Seq, []byte)         {}

func TestPublicReplicaStore(t *testing.T) {
	s := rbcast.NewReplicaStore()
	u := rbcast.ReplicaUpdate{Key: "k", Value: "v", Stamp: 1, Origin: 2}
	data, err := rbcast.EncodeReplicaUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := rbcast.DecodeReplicaUpdate(data)
	if err != nil || got != u {
		t.Fatalf("round trip = %+v, %v", got, err)
	}
	s.Apply(got)
	if v, ok := s.Get("k"); !ok || v != "v" {
		t.Errorf("Get = %q,%v", v, ok)
	}
}

func TestPublicUDPGroup(t *testing.T) {
	g, err := rbcast.StartUDPGroup(3, rbcast.Params{})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Stop()
	seq, err := g.Broadcast([]byte("dgram"))
	if err != nil {
		t.Fatal(err)
	}
	if !g.WaitAll(seq, 15*time.Second) {
		t.Fatal("UDP broadcast via public API incomplete")
	}
}

func TestPublicMultiSourceFleet(t *testing.T) {
	fleet, err := rbcast.StartFleet(rbcast.FleetConfig{
		Hosts:   []rbcast.HostID{1, 2, 3},
		Source:  1,
		Sources: []rbcast.HostID{2},
		Seed:    9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Stop()
	if _, err := fleet.BroadcastFrom(2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if !fleet.WaitStreamDelivered(2, 1, 15*time.Second) {
		t.Fatal("second stream incomplete via public API")
	}
}
